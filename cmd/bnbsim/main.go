// Command bnbsim runs one balls-into-non-uniform-bins experiment from the
// command line and prints aggregate statistics.
//
// Examples:
//
//	bnbsim -spec 500x1+500x10                  # m = C, d = 2, proportional
//	bnbsim -spec 1000x1 -protocol standard -d 3 -reps 500
//	bnbsim -spec 50x1+50x3 -dist power:2.1     # §4.5 tuned exponent
//	bnbsim -spec 100x4 -factor 100 -reps 50    # heavily loaded m = 100·C
//	bnbsim -spec 500000x1+500000x10 -large     # one sharded huge run
//	bnbsim -spec 1000000x1 -large -shards 128 -workers 8
//	bnbsim -spec 1000000x1 -large -reps 100    # sharded Monte-Carlo aggregate
//	bnbsim -spec 100000x1 -stream -rounds 10 -m 50000 -deletions 20000
//	bnbsim -spec 100000x1 -stream -schedule 80000,0,40000 -rebalance-tol 0.2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	balls "repro"
)

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "bnbsim:", err)
	var cancelled *balls.CancelledError
	if errors.As(err, &cancelled) {
		if cancelled.Cause == nil {
			// A planned -cancel-after-reps stop is a success: the
			// partial observations and resume state are the output.
			return
		}
		os.Exit(130) // interrupted by signal, partial state drained
	}
	os.Exit(1)
}

func run(args []string) error {
	fs := flag.NewFlagSet("bnbsim", flag.ContinueOnError)
	spec := fs.String("spec", "1000x1", "bin capacities as COUNTxCAP[+COUNTxCAP...]")
	d := fs.Int("d", 2, "number of choices per ball")
	ballsN := fs.Int64("m", 0, "balls to throw (0 = total capacity C)")
	factor := fs.Float64("factor", 0, "balls as a multiple of C (ignored when -m is set)")
	reps := fs.Int("reps", 100, "independent repetitions")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	distFlag := fs.String("dist", "proportional", "selection distribution: proportional | uniform | power:T | top:MINCAP")
	protoFlag := fs.String("protocol", "greedy", "protocol: greedy | standard | single | goleft | beta:B")
	showLoads := fs.Bool("loads", false, "print the mean sorted load vector")
	large := fs.Bool("large", false, "shard the bin array for huge n: one repetition, or a sharded Monte-Carlo aggregate when -reps is given")
	shards := fs.Int("shards", 0, "shard count for -large (0 = engine default; part of the model)")
	checkpointsFlag := fs.String("checkpoints", "", "comma-separated ball counts for running max / max−avg observations; each entry is an integer or NxC (N times the total capacity), e.g. 1xC,2xC,5xC")
	heights := fs.Int("heights", 0, "report the number of bins at final load >= k for k = 1..HEIGHTS")
	resumeFile := fs.String("resume", "", "resume-state file for -large -reps: loaded when it exists, written on cancellation; a resumed run's output is byte-identical to an uninterrupted one")
	cancelAfter := fs.Int("cancel-after-reps", 0, "with -large -reps: deterministically stop after this many repetitions, emitting partial aggregates (and -resume state) with exit status 0")
	stream := fs.Bool("stream", false, "run the streaming engine: balls arrive in rounds (-m per round), a deterministic deletion stream expires them, shards optionally rebalance between rounds")
	rounds := fs.Int("rounds", 0, "with -stream: number of rounds")
	scheduleFlag := fs.String("schedule", "", "with -stream: comma-separated per-round arrival counts (mutually exclusive with -m/-factor; implies -rounds)")
	deletions := fs.Int64("deletions", 0, "with -stream: balls deleted per round (clamped to the occupancy)")
	rebalanceTol := fs.Float64("rebalance-tol", 0, "with -stream: after deletions, shards above (1+TOL)x their target occupancy shed the excess to underfull shards (0 = off)")
	cancelRounds := fs.Int("cancel-after-rounds", 0, "with -stream: deterministically stop after this many completed rounds, emitting the partial round prefix with exit status 0")
	if err := fs.Parse(args); err != nil {
		return err
	}

	caps, err := balls.ParseCapacitySpec(*spec)
	if err != nil {
		return err
	}
	// In stream mode checkpoints are ROUND indices, so the NxC
	// ball-count syntax has no meaning there.
	if *stream && strings.Contains(*checkpointsFlag, "xC") {
		return fmt.Errorf("-checkpoints with -stream takes round indices, not NxC ball counts")
	}
	checkpoints, err := parseCheckpoints(*checkpointsFlag, sum(caps))
	if err != nil {
		return err
	}
	distribution, err := parseDist(*distFlag)
	if err != nil {
		return err
	}
	protocol, err := parseProtocol(*protoFlag, *d)
	if err != nil {
		return err
	}

	// Flags that belong to only one of the modes fail loudly when
	// combined with the other, instead of being silently dropped.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// SIGINT/SIGTERM drain the engines gracefully: the run stops at the
	// next task boundary, prints the partial observations it completed,
	// and (in resumable modes) persists resume state before exiting 130.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *stream {
		if *large {
			return fmt.Errorf("-stream and -large are mutually exclusive (a streaming run is already sharded)")
		}
		if explicit["reps"] {
			return fmt.Errorf("-reps needs the classic or -large engines (a -stream run is a single stream)")
		}
		if *showLoads {
			return fmt.Errorf("-loads needs the classic engine or -large -reps (a streaming run has no mean load vector)")
		}
		if *resumeFile != "" || *cancelAfter != 0 {
			return fmt.Errorf("-resume and -cancel-after-reps need -large -reps (streaming runs stop on round boundaries; see -cancel-after-rounds)")
		}
		schedule, err := parseSchedule(*scheduleFlag)
		if err != nil {
			return err
		}
		return runStream(ctx, caps, *ballsN, *factor, schedule, *rounds, *deletions, *rebalanceTol, *seed, *shards, *workers, checkpoints, *heights, distribution, protocol, *cancelRounds)
	}
	if explicit["rounds"] || explicit["schedule"] || explicit["deletions"] || explicit["rebalance-tol"] || explicit["cancel-after-rounds"] {
		return fmt.Errorf("-rounds, -schedule, -deletions, -rebalance-tol and -cancel-after-rounds need -stream")
	}
	if *large {
		// -large alone runs one sharded repetition; -large with an
		// explicit -reps runs the sharded Monte-Carlo engine.
		if explicit["reps"] {
			return runLargeMonte(ctx, caps, *ballsN, *factor, *seed, *shards, *workers, *reps, *showLoads, checkpoints, *heights, distribution, protocol, *resumeFile, *cancelAfter)
		}
		if *showLoads {
			return fmt.Errorf("-loads with -large needs -reps (one run has no mean load vector; inspect the result through the library API instead)")
		}
		if *resumeFile != "" || *cancelAfter != 0 {
			return fmt.Errorf("-resume and -cancel-after-reps need -large -reps (only the sharded Monte-Carlo engine has repetition-granular resume state)")
		}
		return runLarge(ctx, caps, *ballsN, *factor, *seed, *shards, *workers, checkpoints, *heights, distribution, protocol)
	}
	if explicit["shards"] {
		return fmt.Errorf("-shards requires -large (the classic engine shards repetitions, not the bin array)")
	}
	if *resumeFile != "" || *cancelAfter != 0 {
		return fmt.Errorf("-resume and -cancel-after-reps need -large -reps (only the sharded Monte-Carlo engine has repetition-granular resume state)")
	}

	res, err := balls.Simulate(balls.SimConfig{
		Capacities:   caps,
		Balls:        *ballsN,
		BallsFactor:  *factor,
		Reps:         *reps,
		Seed:         *seed,
		Workers:      *workers,
		Distribution: distribution,
		Protocol:     protocol,
		SortedLoads:  *showLoads,
		Checkpoints:  checkpoints,
		Heights:      *heights,
		Context:      ctx,
	})
	var cancelled *balls.CancelledError
	if err != nil && !errors.As(err, &cancelled) {
		return err
	}
	if cancelled != nil {
		fmt.Fprintf(os.Stderr, "bnbsim: interrupted — aggregates below cover the first %d completed repetitions\n", cancelled.CompletedReps)
	}

	fmt.Printf("bins:            %d (C = %d)\n", len(caps), sum(caps))
	fmt.Printf("balls per rep:   %d\n", res.Balls)
	fmt.Printf("protocol:        %s\n", protocol.Name())
	fmt.Printf("distribution:    %s\n", distribution.Name())
	fmt.Printf("repetitions:     %d\n", res.Reps)
	fmt.Printf("average load:    %.4f\n", res.AverageLoad)
	fmt.Printf("max load:        %.4f ± %.4f (95%% CI), worst %.4f\n",
		res.MeanMaxLoad, res.MaxLoadCI95, res.WorstMaxLoad)
	fmt.Printf("max − avg:       %.4f\n", res.MeanDeviation)
	fmt.Printf("lnln(n)/ln(2):   %.4f\n", res.TheoryBound)
	printCheckpoints(res.Checkpoints)
	printHeights(res.Heights)
	if *showLoads {
		fmt.Println("mean sorted loads:")
		for i, v := range res.MeanSortedLoads {
			fmt.Printf("%d\t%.4f\n", i, v)
		}
	}
	return err
}

// parseCheckpoints parses the -checkpoints flag: comma-separated ball
// counts, each a plain integer or NxC — N multiples of the total
// capacity c (the natural unit of the paper's §4.4 heavy-load series).
func parseCheckpoints(s string, c int64) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		scale := int64(1)
		if rest, ok := strings.CutSuffix(item, "xC"); ok {
			item, scale = rest, c
		}
		v, err := strconv.ParseInt(item, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad checkpoint %q (want an integer or NxC)", item)
		}
		out = append(out, v*scale)
	}
	return out, nil
}

// printCheckpoints renders the shared checkpoint table. Cuts no
// repetition observed (beyond m, or with an empty block-aligned
// realisation in the sharded engines) print as dashes — the Reps
// column is how the shortfall stays visible instead of silently
// under-recording.
func printCheckpoints(cps []balls.CheckpointResult) {
	if len(cps) == 0 {
		return
	}
	fmt.Println("checkpoints:     (balls, reps, mean balls, max load, max − avg)")
	for _, cp := range cps {
		if cp.Reps == 0 {
			fmt.Printf("%16d %6d %14s %10s %10s  (not observed)\n", cp.Balls, cp.Reps, "-", "-", "-")
			continue
		}
		fmt.Printf("%16d %6d %14.1f %10.4f %10.4f\n",
			cp.Balls, cp.Reps, cp.MeanBalls, cp.MeanMaxLoad, cp.MeanDeviation)
	}
}

// printHeights renders the bins-at-load>=k table (CI suppressed for a
// single observation, where it is undefined).
func printHeights(hs []balls.HeightResult) {
	if len(hs) == 0 {
		return
	}
	fmt.Println("bins at load>=k:")
	for _, h := range hs {
		if math.IsNaN(h.BinsCI95) {
			fmt.Printf("  k=%-4d %14.1f\n", h.Level, h.MeanBins)
			continue
		}
		fmt.Printf("  k=%-4d %14.1f ± %.1f\n", h.Level, h.MeanBins, h.BinsCI95)
	}
}

// runLarge executes the sharded single-run mode and prints its summary.
// A cancelled run prints the checkpoint rows it completed (each
// bit-identical to the corresponding row of an uninterrupted run) and
// returns the CancelledError for main's exit-status handling.
func runLarge(ctx context.Context, caps []int64, m int64, factor float64, seed uint64, shards, workers int, checkpoints []int64, heights int, d balls.Distribution, p balls.Protocol) error {
	start := time.Now()
	res, err := balls.SimulateLarge(balls.LargeConfig{
		Capacities:   caps,
		Balls:        m,
		BallsFactor:  factor,
		Seed:         seed,
		Shards:       shards,
		Workers:      workers,
		Distribution: d,
		Protocol:     p,
		Checkpoints:  checkpoints,
		Heights:      heights,
		Context:      ctx,
	})
	var cancelled *balls.CancelledError
	if err != nil && !errors.As(err, &cancelled) {
		return err
	}
	if cancelled != nil {
		fmt.Fprintf(os.Stderr, "bnbsim: interrupted — %d checkpoint cuts completed, no final state\n", cancelled.CompletedCuts)
		fmt.Printf("mode:            sharded single run (interrupted)\n")
		fmt.Printf("bins:            %d (C = %d)\n", res.N, sum(caps))
		fmt.Printf("balls:           %d\n", res.Balls)
		printCheckpoints(res.Checkpoints)
		return err
	}
	elapsed := time.Since(start)
	var minB, maxB int64 = res.Balls, 0
	for _, b := range res.ShardBalls {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	fmt.Printf("mode:            sharded single run\n")
	fmt.Printf("bins:            %d (C = %d)\n", res.N, sum(caps))
	fmt.Printf("balls:           %d\n", res.Balls)
	fmt.Printf("protocol:        %s\n", p.Name())
	fmt.Printf("distribution:    %s\n", d.Name())
	fmt.Printf("shards:          %d (balls/shard %d..%d)\n", res.Shards, minB, maxB)
	fmt.Printf("average load:    %.4f\n", res.AverageLoad)
	fmt.Printf("max load:        %.4f\n", res.MaxLoad)
	fmt.Printf("max − avg:       %.4f\n", res.Deviation)
	printCheckpoints(res.Checkpoints)
	printHeights(res.Heights)
	fmt.Printf("wall time:       %s\n", elapsed.Round(time.Millisecond))
	return nil
}

// parseSchedule parses the -schedule flag: comma-separated per-round
// arrival counts.
func parseSchedule(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, item := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(item), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad schedule entry %q (want an integer arrival count)", item)
		}
		out = append(out, v)
	}
	return out, nil
}

// printStreamCheckpoints renders the round-indexed trajectory table of
// a streaming run: the first column is the ROUND of the cut and the
// third the occupancy at the end of that round.
func printStreamCheckpoints(cps []balls.CheckpointResult) {
	if len(cps) == 0 {
		return
	}
	fmt.Println("trajectory:      (round, reps, balls, max load, max − avg)")
	for _, cp := range cps {
		if cp.Reps == 0 {
			fmt.Printf("%16d %6d %14s %10s %10s  (not observed)\n", cp.Balls, cp.Reps, "-", "-", "-")
			continue
		}
		fmt.Printf("%16d %6d %14.1f %10.4f %10.4f\n",
			cp.Balls, cp.Reps, cp.MeanBalls, cp.MeanMaxLoad, cp.MeanDeviation)
	}
}

// runStream executes the streaming mode (-stream) and prints its
// summary. Everything above the wall-time line is a pure function of
// the model flags — scripts/determinism.sh byte-compares it across
// worker counts. A cancelled run prints the completed-round prefix
// (bit-identical to a run configured with that many rounds) and
// returns the CancelledError for main's exit-status handling.
func runStream(ctx context.Context, caps []int64, m int64, factor float64, schedule []int64, rounds int, deletions int64, tol float64, seed uint64, shards, workers int, checkpoints []int64, heights int, d balls.Distribution, p balls.Protocol, cancelRounds int) error {
	start := time.Now()
	res, err := balls.SimulateStream(balls.StreamConfig{
		Capacities:        caps,
		Rounds:            rounds,
		Arrivals:          m,
		ArrivalsFactor:    factor,
		Schedule:          schedule,
		Deletions:         deletions,
		RebalanceTol:      tol,
		Seed:              seed,
		Shards:            shards,
		Workers:           workers,
		Distribution:      d,
		Protocol:          p,
		Checkpoints:       checkpoints,
		Heights:           heights,
		Context:           ctx,
		CancelAfterRounds: cancelRounds,
	})
	var cancelled *balls.CancelledError
	if err != nil && !errors.As(err, &cancelled) {
		return err
	}
	if cancelled != nil {
		fmt.Fprintf(os.Stderr, "bnbsim: interrupted — %d completed rounds, %d checkpoint cuts, no final state\n",
			cancelled.CompletedRounds, cancelled.CompletedCuts)
		fmt.Printf("mode:            streaming (interrupted)\n")
		fmt.Printf("bins:            %d (C = %d)\n", res.N, sum(caps))
		fmt.Printf("rounds:          %d completed\n", res.Rounds)
		fmt.Printf("arrived:         %d\n", res.Arrived)
		fmt.Printf("deleted:         %d\n", res.Deleted)
		fmt.Printf("balls:           %d\n", res.Balls)
		printStreamCheckpoints(res.Checkpoints[:cancelled.CompletedCuts])
		return err
	}
	elapsed := time.Since(start)
	var minB, maxB int64 = res.Balls, 0
	for _, b := range res.ShardBalls {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	fmt.Printf("mode:            streaming\n")
	fmt.Printf("bins:            %d (C = %d)\n", res.N, sum(caps))
	fmt.Printf("rounds:          %d\n", res.Rounds)
	fmt.Printf("protocol:        %s\n", p.Name())
	fmt.Printf("distribution:    %s\n", d.Name())
	fmt.Printf("shards:          %d (balls/shard %d..%d)\n", res.Shards, minB, maxB)
	fmt.Printf("arrived:         %d\n", res.Arrived)
	fmt.Printf("deleted:         %d\n", res.Deleted)
	fmt.Printf("rebalanced:      %d\n", res.Moved)
	fmt.Printf("balls:           %d\n", res.Balls)
	fmt.Printf("average load:    %.4f\n", res.AverageLoad)
	fmt.Printf("max load:        %.4f\n", res.MaxLoad)
	fmt.Printf("max − avg:       %.4f\n", res.Deviation)
	printStreamCheckpoints(res.Checkpoints)
	printHeights(res.Heights)
	fmt.Printf("wall time:       %s\n", elapsed.Round(time.Millisecond))
	return nil
}

// runLargeMonte executes the sharded Monte-Carlo mode (-large -reps)
// and prints its aggregate summary.
//
// Resume and cancellation keep the mode's determinism contract: a run
// interrupted at repetition k (by signal or -cancel-after-reps) that
// persisted its state via -resume, then re-run with the same flags,
// prints a summary byte-identical to an uninterrupted run's — resume
// notices go to stderr so stdout stays comparable.
func runLargeMonte(ctx context.Context, caps []int64, m int64, factor float64, seed uint64, shards, workers, reps int, showLoads bool, checkpoints []int64, heights int, d balls.Distribution, p balls.Protocol, resumeFile string, cancelAfter int) error {
	if reps < 1 {
		return fmt.Errorf("-large -reps %d: need at least 1 repetition", reps)
	}
	if cancelAfter < 0 {
		return fmt.Errorf("-cancel-after-reps %d: need >= 0", cancelAfter)
	}
	cfg := balls.MonteLargeConfig{
		LargeConfig: balls.LargeConfig{
			Capacities:   caps,
			Balls:        m,
			BallsFactor:  factor,
			Seed:         seed,
			Shards:       shards,
			Workers:      workers,
			Distribution: d,
			Protocol:     p,
			Checkpoints:  checkpoints,
			Heights:      heights,
			Context:      ctx,
		},
		Reps:            reps,
		SortedLoads:     showLoads,
		CancelAfterReps: cancelAfter,
	}
	if resumeFile != "" {
		st, err := balls.ReadResumeState(resumeFile)
		switch {
		case err == nil:
			cfg.Resume = st
			fmt.Fprintf(os.Stderr, "bnbsim: resuming from %s (%d repetitions already folded)\n", resumeFile, st.CompletedReps)
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to resume yet; the file is written if
			// this run is cancelled.
		default:
			return err
		}
	}
	start := time.Now()
	res, err := balls.MonteCarloLarge(cfg)
	var cancelled *balls.CancelledError
	if err != nil && !errors.As(err, &cancelled) {
		return err
	}
	if cancelled != nil {
		fmt.Fprintf(os.Stderr, "bnbsim: interrupted — aggregates below cover the first %d completed repetitions\n", cancelled.CompletedReps)
		if resumeFile != "" && cancelled.Checkpoint != nil {
			if werr := cancelled.Checkpoint.WriteFile(resumeFile); werr != nil {
				return fmt.Errorf("writing resume state: %w", werr)
			}
			fmt.Fprintf(os.Stderr, "bnbsim: resume state written to %s\n", resumeFile)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("mode:            sharded monte-carlo\n")
	fmt.Printf("bins:            %d (C = %d)\n", res.N, sum(caps))
	fmt.Printf("balls per rep:   %d\n", res.Balls)
	fmt.Printf("protocol:        %s\n", p.Name())
	fmt.Printf("distribution:    %s\n", d.Name())
	fmt.Printf("shards:          %d\n", res.Shards)
	fmt.Printf("repetitions:     %d\n", res.Reps)
	fmt.Printf("average load:    %.4f\n", res.AverageLoad)
	fmt.Printf("max load:        %.4f ± %.4f (95%% CI), worst %.4f\n",
		res.MeanMaxLoad, res.MaxLoadCI95, res.WorstMaxLoad)
	fmt.Printf("max − avg:       %.4f ± %.4f\n", res.MeanDeviation, res.DeviationCI95)
	printCheckpoints(res.Checkpoints)
	printHeights(res.Heights)
	fmt.Printf("wall time:       %s\n", elapsed.Round(time.Millisecond))
	if showLoads {
		fmt.Println("mean sorted loads:")
		for i, v := range res.MeanSortedLoads {
			fmt.Printf("%d\t%.4f\n", i, v)
		}
	}
	return err
}

func sum(caps []int64) int64 {
	var s int64
	for _, c := range caps {
		s += c
	}
	return s
}

func parseDist(s string) (balls.Distribution, error) {
	switch {
	case s == "proportional":
		return balls.Proportional(), nil
	case s == "uniform":
		return balls.UniformSelection(), nil
	case strings.HasPrefix(s, "power:"):
		t, err := strconv.ParseFloat(strings.TrimPrefix(s, "power:"), 64)
		if err != nil {
			return balls.Distribution{}, fmt.Errorf("bad power exponent in %q", s)
		}
		return balls.PowerSelection(t), nil
	case strings.HasPrefix(s, "top:"):
		min, err := strconv.ParseInt(strings.TrimPrefix(s, "top:"), 10, 64)
		if err != nil {
			return balls.Distribution{}, fmt.Errorf("bad top threshold in %q", s)
		}
		return balls.TopOnlySelection(min), nil
	default:
		return balls.Distribution{}, fmt.Errorf("unknown distribution %q", s)
	}
}

func parseProtocol(s string, d int) (balls.Protocol, error) {
	switch {
	case s == "greedy":
		return balls.Greedy(d), nil
	case s == "standard":
		return balls.StandardDChoice(d), nil
	case s == "single":
		return balls.SingleChoice(), nil
	case s == "goleft":
		return balls.AlwaysGoLeft(d), nil
	case strings.HasPrefix(s, "beta:"):
		b, err := strconv.ParseFloat(strings.TrimPrefix(s, "beta:"), 64)
		if err != nil {
			return balls.Protocol{}, fmt.Errorf("bad beta in %q", s)
		}
		return balls.OnePlusBetaChoice(b), nil
	default:
		return balls.Protocol{}, fmt.Errorf("unknown protocol %q", s)
	}
}
