package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	balls "repro"
)

func TestParseDist(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"proportional", "proportional"},
		{"uniform", "uniform"},
		{"power:2.1", "power(t=2.1)"},
		{"top:5", "top-only(c>=5)"},
	}
	for _, c := range cases {
		d, err := parseDist(c.in)
		if err != nil {
			t.Fatalf("parseDist(%q): %v", c.in, err)
		}
		if d.Name() != c.want {
			t.Errorf("parseDist(%q).Name() = %q, want %q", c.in, d.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "nope", "power:", "power:x", "top:", "top:x"} {
		if _, err := parseDist(bad); err == nil {
			t.Errorf("parseDist(%q) accepted", bad)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	cases := []struct {
		in   string
		d    int
		want string
	}{
		{"greedy", 2, "greedy(d=2)"},
		{"greedy", 4, "greedy(d=4)"},
		{"standard", 3, "standard(d=3)"},
		{"single", 2, "single"},
		{"goleft", 2, "goleft(d=2)"},
		{"beta:0.5", 2, "oneplusbeta(b=0.5)"},
	}
	for _, c := range cases {
		p, err := parseProtocol(c.in, c.d)
		if err != nil {
			t.Fatalf("parseProtocol(%q): %v", c.in, err)
		}
		if p.Name() != c.want {
			t.Errorf("parseProtocol(%q, %d).Name() = %q, want %q", c.in, c.d, p.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "xxx", "beta:", "beta:zz"} {
		if _, err := parseProtocol(bad, 2); err == nil {
			t.Errorf("parseProtocol(%q) accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// run() prints to stdout; just verify it executes without error on a
	// small configuration and rejects bad flags.
	if err := run([]string{"-spec", "10x1+10x4", "-reps", "5", "-m", "40"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-spec", "bogus"}); err == nil {
		t.Error("bad spec accepted")
	}
	if err := run([]string{"-spec", "4x1", "-dist", "nope"}); err == nil {
		t.Error("bad dist accepted")
	}
	if err := run([]string{"-spec", "4x1", "-protocol", "nope"}); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunLargeEndToEnd(t *testing.T) {
	if err := run([]string{"-spec", "100x1+100x10", "-large", "-shards", "8"}); err != nil {
		t.Fatalf("run -large: %v", err)
	}
	if err := run([]string{"-spec", "100x1", "-large", "-shards", "4", "-workers", "3", "-m", "500"}); err != nil {
		t.Fatalf("run -large with workers: %v", err)
	}
	if err := run([]string{"-spec", "4x1", "-large", "-shards", "9"}); err == nil {
		t.Error("shards > n accepted")
	}
	if err := run([]string{"-spec", "100x1", "-large", "-shards", "4", "-factor", "3"}); err != nil {
		t.Fatalf("run -large with factor: %v", err)
	}
	if err := run([]string{"-spec", "100x1", "-large", "-loads"}); err == nil {
		t.Error("-loads with -large but without -reps accepted")
	}
	if err := run([]string{"-spec", "100x1", "-shards", "4"}); err == nil {
		t.Error("-shards without -large accepted")
	}
}

func TestRunLargeMonteEndToEnd(t *testing.T) {
	if err := run([]string{"-spec", "100x1+100x10", "-large", "-reps", "10", "-shards", "8"}); err != nil {
		t.Fatalf("run -large -reps: %v", err)
	}
	if err := run([]string{"-spec", "100x1", "-large", "-reps", "5", "-shards", "4", "-workers", "3", "-m", "500"}); err != nil {
		t.Fatalf("run -large -reps with workers: %v", err)
	}
	if err := run([]string{"-spec", "20x1", "-large", "-reps", "3", "-loads"}); err != nil {
		t.Fatalf("run -large -reps -loads: %v", err)
	}
	if err := run([]string{"-spec", "100x1", "-large", "-reps", "0"}); err == nil {
		t.Error("-reps 0 with -large accepted")
	}
}

func TestRunStreamEndToEnd(t *testing.T) {
	if err := run([]string{"-spec", "100x1+100x10", "-stream", "-rounds", "4", "-m", "500",
		"-deletions", "100", "-rebalance-tol", "0.25", "-shards", "8",
		"-checkpoints", "2,4", "-heights", "2"}); err != nil {
		t.Fatalf("run -stream: %v", err)
	}
	if err := run([]string{"-spec", "100x1", "-stream", "-schedule", "800,0,200", "-deletions", "50", "-shards", "4"}); err != nil {
		t.Fatalf("run -stream -schedule: %v", err)
	}
	// -cancel-after-rounds reports a planned cancel (nil cause — main
	// exits 0 on it) with the completed-round prefix.
	err := run([]string{"-spec", "100x1", "-stream", "-rounds", "5", "-m", "200",
		"-cancel-after-rounds", "2", "-checkpoints", "1,4"})
	var cerr *balls.CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("cancelled run: err = %v, want *balls.CancelledError", err)
	}
	if cerr.Cause != nil || cerr.CompletedRounds != 2 || cerr.CompletedCuts != 1 {
		t.Fatalf("cancelled run: provenance %+v, want planned cancel at 2 rounds, 1 cut", cerr)
	}
}

func TestStreamFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"stream+large", []string{"-spec", "10x1", "-stream", "-large", "-rounds", "2"}},
		{"stream+reps", []string{"-spec", "10x1", "-stream", "-rounds", "2", "-reps", "5"}},
		{"stream+loads", []string{"-spec", "10x1", "-stream", "-rounds", "2", "-loads"}},
		{"stream+resume", []string{"-spec", "10x1", "-stream", "-rounds", "2", "-resume", "x.json"}},
		{"stream+cancel-reps", []string{"-spec", "10x1", "-stream", "-rounds", "2", "-cancel-after-reps", "3"}},
		{"stream+xC-checkpoint", []string{"-spec", "10x1", "-stream", "-rounds", "2", "-checkpoints", "1xC"}},
		{"rounds-without-stream", []string{"-spec", "10x1", "-rounds", "3"}},
		{"deletions-without-stream", []string{"-spec", "10x1", "-deletions", "5"}},
		{"tol-without-stream", []string{"-spec", "10x1", "-rebalance-tol", "0.1"}},
		{"schedule-without-stream", []string{"-spec", "10x1", "-schedule", "5,5"}},
		{"cancel-rounds-without-stream", []string{"-spec", "10x1", "-cancel-after-rounds", "2"}},
		{"no-rounds", []string{"-spec", "10x1", "-stream"}},
		{"schedule-clash", []string{"-spec", "10x1", "-stream", "-schedule", "5,5", "-m", "5"}},
		{"bad-schedule", []string{"-spec", "10x1", "-stream", "-schedule", "5,x"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Errorf("run(%v) accepted", tc.args)
			}
		})
	}
}

func TestParseSchedule(t *testing.T) {
	got, err := parseSchedule("500, 0,200")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{500, 0, 200}
	if len(got) != len(want) {
		t.Fatalf("parseSchedule = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseSchedule = %v, want %v", got, want)
		}
	}
	if got, err := parseSchedule(""); err != nil || got != nil {
		t.Fatalf("empty flag: %v, %v", got, err)
	}
	for _, bad := range []string{"abc", "1,", "1..2"} {
		if _, err := parseSchedule(bad); err == nil {
			t.Errorf("parseSchedule(%q) accepted", bad)
		}
	}
}

func TestSum(t *testing.T) {
	if got := sum([]int64{1, 2, 3}); got != 6 {
		t.Fatalf("sum = %d", got)
	}
	if got := sum(nil); got != 0 {
		t.Fatalf("sum(nil) = %d", got)
	}
}

func TestParseDistTopValue(t *testing.T) {
	d, err := parseDist("top:12")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Name(), "12") {
		t.Fatalf("threshold lost: %q", d.Name())
	}
}

func TestParseCheckpoints(t *testing.T) {
	got, err := parseCheckpoints("500, 1xC,2xC", 2200)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{500, 2200, 4400}
	if len(got) != len(want) {
		t.Fatalf("parseCheckpoints = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseCheckpoints = %v, want %v", got, want)
		}
	}
	if got, err := parseCheckpoints("", 100); err != nil || got != nil {
		t.Fatalf("empty flag: %v, %v", got, err)
	}
	for _, bad := range []string{"abc", "1x", "xC", "1.5xC", "10,"} {
		if _, err := parseCheckpoints(bad, 100); err == nil {
			t.Errorf("parseCheckpoints(%q) accepted", bad)
		}
	}
}

func TestObservationFlagsEndToEnd(t *testing.T) {
	// classic, sharded single-run and sharded Monte-Carlo modes all
	// accept -checkpoints/-heights (including cuts beyond m, which
	// print as unobserved rows).
	if err := run([]string{"-spec", "50x1+50x10", "-reps", "5", "-checkpoints", "100,1xC,9xC", "-heights", "3"}); err != nil {
		t.Fatalf("classic with observations: %v", err)
	}
	if err := run([]string{"-spec", "200x1+200x10", "-large", "-shards", "4", "-checkpoints", "600,1xC", "-heights", "2"}); err != nil {
		t.Fatalf("-large with observations: %v", err)
	}
	if err := run([]string{"-spec", "200x1+200x10", "-large", "-shards", "4", "-reps", "4", "-checkpoints", "600,1xC", "-heights", "2"}); err != nil {
		t.Fatalf("-large -reps with observations: %v", err)
	}
	if err := run([]string{"-spec", "10x1", "-checkpoints", "bogus"}); err == nil {
		t.Error("bad -checkpoints accepted")
	}
	if err := run([]string{"-spec", "10x1", "-checkpoints", "0"}); err == nil {
		t.Error("checkpoint at 0 balls accepted")
	}
	if err := run([]string{"-spec", "10x1", "-heights", "-2"}); err == nil {
		t.Error("negative -heights accepted")
	}
}

func TestResumeFlagValidation(t *testing.T) {
	// -resume / -cancel-after-reps belong to the sharded Monte-Carlo
	// mode only; everywhere else they must fail loudly.
	if err := run([]string{"-spec", "10x1", "-resume", "x.json"}); err == nil {
		t.Error("-resume without -large -reps accepted")
	}
	if err := run([]string{"-spec", "10x1", "-cancel-after-reps", "2"}); err == nil {
		t.Error("-cancel-after-reps without -large -reps accepted")
	}
	if err := run([]string{"-spec", "100x1", "-large", "-resume", "x.json"}); err == nil {
		t.Error("-resume with -large but without -reps accepted")
	}
	if err := run([]string{"-spec", "100x1", "-large", "-reps", "3", "-cancel-after-reps", "-1"}); err == nil {
		t.Error("negative -cancel-after-reps accepted")
	}
	if err := run([]string{"-spec", "100x1", "-large", "-reps", "3", "-resume", "/does/not/exist/dir/x.json", "-cancel-after-reps", "1"}); err == nil {
		t.Error("unwritable -resume path accepted")
	}
}

func TestCancelResumeEndToEnd(t *testing.T) {
	resume := filepath.Join(t.TempDir(), "resume.json")
	args := []string{"-spec", "200x1+200x10", "-seed", "99", "-large", "-shards", "4", "-reps", "8", "-checkpoints", "500,1xC"}
	// The interrupted run stops deterministically after 3 repetitions,
	// persists its resume state, and reports a planned cancel (nil
	// cause — main exits 0 on it).
	err := run(append(args, "-resume", resume, "-cancel-after-reps", "3"))
	var cerr *balls.CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("interrupted run: err = %v, want *balls.CancelledError", err)
	}
	if cerr.Cause != nil || cerr.CompletedReps != 3 {
		t.Fatalf("interrupted run: provenance %+v, want planned cancel at 3 reps", cerr)
	}
	if _, err := os.Stat(resume); err != nil {
		t.Fatalf("resume state not written: %v", err)
	}
	// The resumed run loads the state and completes cleanly.
	if err := run(append(args, "-resume", resume)); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
}
