// Command bnbtheory prints the paper's closed-form predictions for a
// range of system sizes: the ln ln(n)/ln(d) max-load term, the big-bin
// threshold r·ln(n), Theorem 2's small-capacity bound, and Observation
// 2's uniform-capacity prediction.
//
// Example:
//
//	bnbtheory -n 100,1000,10000 -d 2,3 -c 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/table"
	"repro/internal/theory"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bnbtheory:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bnbtheory", flag.ContinueOnError)
	nFlag := fs.String("n", "100,1000,10000,100000", "comma-separated bin counts")
	dFlag := fs.String("d", "2,3,4", "comma-separated choice counts")
	cFlag := fs.Int64("c", 1, "uniform capacity for the Observation 2 column (m = c·n)")
	rFlag := fs.Float64("r", 1, "big-bin constant r in r·ln(n)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*nFlag)
	if err != nil {
		return err
	}
	ds, err := parseInts(*dFlag)
	if err != nil {
		return err
	}

	tab := table.New("Theory predictions (constants omitted: every bound carries an O(1) term)",
		"n", "d", "lnln_over_lnd", "big_threshold", "thm2_cs_bound",
		"obs2_maxload_mc")
	tab.Comment = fmt.Sprintf("obs2 column: m = %d*n balls into n bins of capacity %d; big threshold uses r=%g", *cFlag, *cFlag, *rFlag)
	for _, n := range ns {
		for _, d := range ds {
			m := *cFlag * int64(n)
			tab.MustAddRow(float64(n), float64(d),
				theory.TwoChoiceBound(n, d),
				theory.BigThreshold(n, *rFlag),
				theory.Theorem2SmallCapacityBound(int64(n), d),
				theory.UniformCapacityMaxLoad(m, n, d, *cFlag))
		}
	}
	return tab.WritePretty(os.Stdout)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer list entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
