package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 20,300")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 20, 300}
	if len(got) != len(want) {
		t.Fatalf("parseInts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "1,,2", "0", "-3", "1,x"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-n", "100,1000", "-d", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-n", "junk"}); err == nil {
		t.Error("bad -n accepted")
	}
	if err := run([]string{"-d", "junk"}); err == nil {
		t.Error("bad -d accepted")
	}
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
