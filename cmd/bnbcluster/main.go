// Command bnbcluster runs the churn-tolerant serving engine: a request
// stream dispatched onto heterogeneous servers through a weighted
// consistent-hash ring and a d-choice placement kernel, surviving
// server crashes via redistribution, timeouts, retries and load
// shedding. The trajectory is bit-identical for any -workers value.
//
// Examples:
//
//	bnbcluster -spec 8x1+2x10 -arrivals 21 -ticks 2000
//	bnbcluster -spec 8x2 -arrivals 14 -churn down@100:3,up@400:3 -timeout 8 -retries 2
//	bnbcluster -spec 20x1 -arrivals 16 -crash-prob 0.002 -recover-prob 0.1 -shed 4 -json
//
// The pre-churn discrete-time simulator (dispatch policies, warm-up
// windows, no failures) is still available behind -legacy.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	balls "repro"
	"repro/internal/cluster"
	"repro/internal/protocol"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bnbcluster:", err)
		os.Exit(1)
	}
}

// report is the JSON output schema of the churn-tolerant engine. It
// contains no wall-clock fields, so the bytes are reproducible across
// runs and worker counts (scripts/determinism.sh relies on that).
type report struct {
	Servers         int     `json:"servers"`
	TotalCapacity   int64   `json:"total_capacity"`
	ArrivalsPerTick int64   `json:"arrivals_per_tick"`
	Ticks           int     `json:"ticks"`
	Arrived         int64   `json:"arrived"`
	Shed            int64   `json:"shed"`
	Admitted        int64   `json:"admitted"`
	Completed       int64   `json:"completed"`
	TimedOut        int64   `json:"timed_out"`
	Retried         int64   `json:"retried"`
	Failed          int64   `json:"failed"`
	Redistributed   int64   `json:"redistributed"`
	FinalBacklog    int64   `json:"final_backlog"`
	PendingRetry    int64   `json:"pending_retry"`
	Crashes         int     `json:"crashes"`
	Recoveries      int     `json:"recoveries"`
	Availability    float64 `json:"availability"`
	Goodput         float64 `json:"goodput"`
	MeanLatency     float64 `json:"mean_latency_ticks"`
	P99Latency      int64   `json:"p99_latency_ticks"`
	MaxQueueLoad    float64 `json:"max_queue_load"`
	AvgQueueLoad    float64 `json:"avg_queue_load"`
	Cancelled       bool    `json:"cancelled,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("bnbcluster", flag.ContinueOnError)
	spec := fs.String("spec", "8x1+2x10", "server capacities as COUNTxCAP[+COUNTxCAP...]")
	arrivals := fs.Int64("arrivals", 21, "requests arriving per tick")
	ticks := fs.Int("ticks", 2000, "simulation horizon in ticks")
	churn := fs.String("churn", "", "scheduled churn events as down@TICK:PEER or up@TICK:PEER, comma-separated, ascending ticks")
	crashProb := fs.Float64("crash-prob", 0, "per-tick crash probability of each live server")
	recoverProb := fs.Float64("recover-prob", 0, "per-tick recovery probability of each down server")
	timeout := fs.Int("timeout", 0, "request timeout in ticks (0 = no timeouts)")
	retries := fs.Int("retries", 0, "retry attempts per timed-out request")
	backoff := fs.Int("backoff", 1, "first retry delay in ticks (doubles per attempt)")
	shed := fs.Float64("shed", 0, "shed arrivals when total queue exceeds this multiple of live capacity (0 = never)")
	vnodes := fs.Int("vnodes", 0, "ring virtual nodes per unit of capacity (0 = default)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	shards := fs.Int("shards", 0, "server shard count (0 = default; part of the model)")
	workers := fs.Int("workers", 0, "worker cap (0 = GOMAXPROCS; never affects results)")
	cancelAfter := fs.Int("cancel-after-ticks", 0, "deterministically stop after this many ticks (0 = run to the horizon)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	legacy := fs.Bool("legacy", false, "run the pre-churn simulator (enables -policy/-d/-warmup; ignores churn/retry/shed flags)")
	policy := fs.String("policy", "greedy", "legacy dispatch policy: greedy | standard | single | goleft | batched:B")
	d := fs.Int("d", 2, "legacy choices per request")
	warmup := fs.Int("warmup", 0, "legacy warm-up ticks excluded from stats (default ticks/10)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	caps, err := balls.ParseCapacitySpec(*spec)
	if err != nil {
		return err
	}
	if *legacy {
		return runLegacy(caps, int(*arrivals), *ticks, *warmup, *policy, *d, *seed, *asJSON)
	}
	schedule, err := parseChurn(*churn)
	if err != nil {
		return err
	}
	res, err := balls.SimulateCluster(balls.ClusterConfig{
		Capacities:    caps,
		Ticks:         *ticks,
		Arrivals:      *arrivals,
		VnodesPerUnit: *vnodes,
		Churn: balls.ChurnPlan{
			Schedule:    schedule,
			CrashProb:   *crashProb,
			RecoverProb: *recoverProb,
		},
		Retry: balls.RetryPolicy{
			TimeoutTicks: *timeout,
			MaxRetries:   *retries,
			BackoffBase:  *backoff,
		},
		ShedThreshold:    *shed,
		Seed:             *seed,
		Shards:           *shards,
		Workers:          *workers,
		CancelAfterTicks: *cancelAfter,
	})
	cancelled := false
	if err != nil {
		if !errors.Is(err, balls.ErrCancelled) {
			return err
		}
		cancelled = true
	}
	rep := report{
		Servers:         res.N,
		TotalCapacity:   sumCaps(caps),
		ArrivalsPerTick: *arrivals,
		Ticks:           res.Ticks,
		Arrived:         res.Arrived,
		Shed:            res.Shed,
		Admitted:        res.Admitted,
		Completed:       res.Completed,
		TimedOut:        res.TimedOut,
		Retried:         res.Retried,
		Failed:          res.Failed,
		Redistributed:   res.Redistributed,
		FinalBacklog:    res.Queued,
		PendingRetry:    res.PendingRetry,
		Crashes:         res.Crashes,
		Recoveries:      res.Recoveries,
		Availability:    res.Availability,
		MeanLatency:     res.MeanLatency,
		P99Latency:      res.P99Latency,
		MaxQueueLoad:    res.MaxQueueLoad,
		AvgQueueLoad:    res.AvgQueueLoad,
		Cancelled:       cancelled,
	}
	if res.Arrived > 0 {
		rep.Goodput = float64(res.Completed) / float64(res.Arrived)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("servers:       %d (capacity %d/tick)\n", rep.Servers, rep.TotalCapacity)
	fmt.Printf("arrivals:      %d/tick over %d ticks (%d offered)\n", rep.ArrivalsPerTick, rep.Ticks, rep.Arrived)
	fmt.Printf("churn:         %d crashes, %d recoveries (availability %.3f)\n", rep.Crashes, rep.Recoveries, rep.Availability)
	fmt.Printf("admission:     %d admitted, %d shed\n", rep.Admitted, rep.Shed)
	fmt.Printf("outcomes:      %d completed (goodput %.3f), %d timed out, %d retried, %d failed\n",
		rep.Completed, rep.Goodput, rep.TimedOut, rep.Retried, rep.Failed)
	fmt.Printf("redistributed: %d requests off crashed servers\n", rep.Redistributed)
	fmt.Printf("latency:       mean %.3f ticks, p99 %d ticks\n", rep.MeanLatency, rep.P99Latency)
	if !cancelled {
		fmt.Printf("final state:   backlog %d (+%d awaiting retry), queue load max %.3f avg %.3f\n",
			rep.FinalBacklog, rep.PendingRetry, rep.MaxQueueLoad, rep.AvgQueueLoad)
	} else {
		fmt.Printf("cancelled:     after %d completed ticks (backlog %d, +%d awaiting retry)\n",
			rep.Ticks, rep.FinalBacklog, rep.PendingRetry)
	}
	return nil
}

// parseChurn parses "down@TICK:PEER,up@TICK:PEER,..." into a schedule.
func parseChurn(s string) ([]balls.ChurnEvent, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	events := make([]balls.ChurnEvent, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		kind, rest, ok := strings.Cut(p, "@")
		if !ok || (kind != "down" && kind != "up") {
			return nil, fmt.Errorf("bad churn event %q (want down@TICK:PEER or up@TICK:PEER)", p)
		}
		tickStr, peerStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("bad churn event %q (want down@TICK:PEER or up@TICK:PEER)", p)
		}
		tick, err := strconv.Atoi(tickStr)
		if err != nil {
			return nil, fmt.Errorf("bad tick in churn event %q: %v", p, err)
		}
		peer, err := strconv.Atoi(peerStr)
		if err != nil {
			return nil, fmt.Errorf("bad peer in churn event %q: %v", p, err)
		}
		events = append(events, balls.ChurnEvent{Tick: tick, Peer: peer, Down: kind == "down"})
	}
	return events, nil
}

// legacyReport is the JSON schema of the -legacy path, unchanged from
// the pre-churn simulator.
type legacyReport struct {
	Servers         int     `json:"servers"`
	TotalCapacity   int64   `json:"total_capacity"`
	ArrivalsPerTick int     `json:"arrivals_per_tick"`
	Utilization     float64 `json:"utilization"`
	Ticks           int     `json:"ticks"`
	Policy          string  `json:"policy"`
	MeanResponse    float64 `json:"mean_response_ticks"`
	P95Response     float64 `json:"p95_response_hint"`
	MaxQueueLoad    float64 `json:"max_queue_load"`
	MeanPeakQueue   float64 `json:"mean_peak_queue_load"`
	FinalBacklog    int64   `json:"final_backlog"`
	Completed       int64   `json:"completed"`
}

func runLegacy(caps []int64, arrivals, ticks, warmup int, policy string, d int, seed uint64, asJSON bool) error {
	factory, name, err := parsePolicy(policy, d)
	if err != nil {
		return err
	}
	if warmup == 0 {
		warmup = ticks / 10
	}
	cfg := cluster.Config{
		Capacities:      caps,
		ArrivalsPerTick: arrivals,
		Ticks:           ticks,
		WarmupTicks:     warmup,
		Placer:          factory,
		Seed:            seed,
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		return err
	}
	rep := legacyReport{
		Servers:         len(caps),
		TotalCapacity:   sumCaps(caps),
		ArrivalsPerTick: arrivals,
		Utilization:     cluster.Utilization(cfg),
		Ticks:           ticks,
		Policy:          name,
		MeanResponse:    res.ResponseTime.Mean(),
		P95Response:     res.ResponseTime.Mean() + 2*res.ResponseTime.StdDev(),
		MaxQueueLoad:    res.MaxQueueLoad,
		MeanPeakQueue:   res.MeanQueueLoad.Mean(),
		FinalBacklog:    res.FinalQueued,
		Completed:       res.Completed,
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("servers:          %d (capacity %d/tick)\n", rep.Servers, rep.TotalCapacity)
	fmt.Printf("arrivals:         %d/tick (utilization %.0f%%)\n", rep.ArrivalsPerTick, 100*rep.Utilization)
	fmt.Printf("policy:           %s\n", rep.Policy)
	fmt.Printf("mean response:    %.3f ticks (mean+2sd %.3f)\n", rep.MeanResponse, rep.P95Response)
	fmt.Printf("peak queue load:  %.3f (mean per-tick peak %.3f)\n", rep.MaxQueueLoad, rep.MeanPeakQueue)
	fmt.Printf("final backlog:    %d requests after %d ticks\n", rep.FinalBacklog, rep.Ticks)
	return nil
}

func sumCaps(caps []int64) int64 {
	var s int64
	for _, c := range caps {
		s += c
	}
	return s
}

func parsePolicy(s string, d int) (protocol.Factory, string, error) {
	switch {
	case s == "greedy":
		return protocol.GreedyFactory(d), fmt.Sprintf("greedy(d=%d)", d), nil
	case s == "standard":
		return protocol.StandardFactory(d), fmt.Sprintf("standard(d=%d)", d), nil
	case s == "single":
		return protocol.SingleFactory(), "single", nil
	case s == "goleft":
		return protocol.GoLeftFactory(d), fmt.Sprintf("goleft(d=%d)", d), nil
	case len(s) > 8 && s[:8] == "batched:":
		var b int
		if _, err := fmt.Sscanf(s[8:], "%d", &b); err != nil || b < 1 {
			return nil, "", fmt.Errorf("bad batch size in %q", s)
		}
		return protocol.BatchedFactory(d, b), fmt.Sprintf("batched(d=%d,B=%d)", d, b), nil
	default:
		return nil, "", fmt.Errorf("unknown policy %q", s)
	}
}
