// Command bnbcluster runs the discrete-time queueing cluster simulator:
// a request stream dispatched onto heterogeneous servers with a
// balls-into-bins policy (Algorithm 1 by default).
//
// Examples:
//
//	bnbcluster -spec 8x1+2x10 -arrivals 21 -ticks 2000
//	bnbcluster -spec 8x1+2x10 -arrivals 25 -policy single
//	bnbcluster -spec 100x1 -arrivals 90 -policy standard -d 2 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	balls "repro"
	"repro/internal/cluster"
	"repro/internal/protocol"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bnbcluster:", err)
		os.Exit(1)
	}
}

// report is the JSON output schema.
type report struct {
	Servers         int     `json:"servers"`
	TotalCapacity   int64   `json:"total_capacity"`
	ArrivalsPerTick int     `json:"arrivals_per_tick"`
	Utilization     float64 `json:"utilization"`
	Ticks           int     `json:"ticks"`
	Policy          string  `json:"policy"`
	MeanResponse    float64 `json:"mean_response_ticks"`
	P95Response     float64 `json:"p95_response_hint"`
	MaxQueueLoad    float64 `json:"max_queue_load"`
	MeanPeakQueue   float64 `json:"mean_peak_queue_load"`
	FinalBacklog    int64   `json:"final_backlog"`
	Completed       int64   `json:"completed"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("bnbcluster", flag.ContinueOnError)
	spec := fs.String("spec", "8x1+2x10", "server speeds as COUNTxSPEED[+COUNTxSPEED...]")
	arrivals := fs.Int("arrivals", 21, "requests arriving per tick")
	ticks := fs.Int("ticks", 2000, "simulation horizon in ticks")
	warmup := fs.Int("warmup", 0, "warm-up ticks excluded from stats (default ticks/10)")
	policy := fs.String("policy", "greedy", "dispatch policy: greedy | standard | single | goleft | batched:B")
	d := fs.Int("d", 2, "choices per request")
	seed := fs.Uint64("seed", 1, "RNG seed")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	caps, err := balls.ParseCapacitySpec(*spec)
	if err != nil {
		return err
	}
	factory, name, err := parsePolicy(*policy, *d)
	if err != nil {
		return err
	}
	if *warmup == 0 {
		*warmup = *ticks / 10
	}
	cfg := cluster.Config{
		Capacities:      caps,
		ArrivalsPerTick: *arrivals,
		Ticks:           *ticks,
		WarmupTicks:     *warmup,
		Placer:          factory,
		Seed:            *seed,
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		return err
	}
	rep := report{
		Servers:         len(caps),
		TotalCapacity:   sumCaps(caps),
		ArrivalsPerTick: *arrivals,
		Utilization:     cluster.Utilization(cfg),
		Ticks:           *ticks,
		Policy:          name,
		MeanResponse:    res.ResponseTime.Mean(),
		P95Response:     res.ResponseTime.Mean() + 2*res.ResponseTime.StdDev(),
		MaxQueueLoad:    res.MaxQueueLoad,
		MeanPeakQueue:   res.MeanQueueLoad.Mean(),
		FinalBacklog:    res.FinalQueued,
		Completed:       res.Completed,
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("servers:          %d (capacity %d/tick)\n", rep.Servers, rep.TotalCapacity)
	fmt.Printf("arrivals:         %d/tick (utilization %.0f%%)\n", rep.ArrivalsPerTick, 100*rep.Utilization)
	fmt.Printf("policy:           %s\n", rep.Policy)
	fmt.Printf("mean response:    %.3f ticks (mean+2sd %.3f)\n", rep.MeanResponse, rep.P95Response)
	fmt.Printf("peak queue load:  %.3f (mean per-tick peak %.3f)\n", rep.MaxQueueLoad, rep.MeanPeakQueue)
	fmt.Printf("final backlog:    %d requests after %d ticks\n", rep.FinalBacklog, rep.Ticks)
	return nil
}

func sumCaps(caps []int64) int64 {
	var s int64
	for _, c := range caps {
		s += c
	}
	return s
}

func parsePolicy(s string, d int) (protocol.Factory, string, error) {
	switch {
	case s == "greedy":
		return protocol.GreedyFactory(d), fmt.Sprintf("greedy(d=%d)", d), nil
	case s == "standard":
		return protocol.StandardFactory(d), fmt.Sprintf("standard(d=%d)", d), nil
	case s == "single":
		return protocol.SingleFactory(), "single", nil
	case s == "goleft":
		return protocol.GoLeftFactory(d), fmt.Sprintf("goleft(d=%d)", d), nil
	case len(s) > 8 && s[:8] == "batched:":
		var b int
		if _, err := fmt.Sscanf(s[8:], "%d", &b); err != nil || b < 1 {
			return nil, "", fmt.Errorf("bad batch size in %q", s)
		}
		return protocol.BatchedFactory(d, b), fmt.Sprintf("batched(d=%d,B=%d)", d, b), nil
	default:
		return nil, "", fmt.Errorf("unknown policy %q", s)
	}
}
