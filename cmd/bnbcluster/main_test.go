package main

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		d    int
		want string
	}{
		{"greedy", 2, "greedy(d=2)"},
		{"standard", 3, "standard(d=3)"},
		{"single", 2, "single"},
		{"goleft", 2, "goleft(d=2)"},
		{"batched:16", 2, "batched(d=2,B=16)"},
	}
	for _, c := range cases {
		f, name, err := parsePolicy(c.in, c.d)
		if err != nil {
			t.Fatalf("parsePolicy(%q): %v", c.in, err)
		}
		if f == nil || name != c.want {
			t.Errorf("parsePolicy(%q) = %q, want %q", c.in, name, c.want)
		}
	}
	for _, bad := range []string{"", "zzz", "batched:", "batched:x", "batched:0"} {
		if _, _, err := parsePolicy(bad, 2); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-spec", "4x1+1x5", "-arrivals", "4", "-ticks", "100"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-spec", "4x1", "-arrivals", "2", "-ticks", "50", "-json"}); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	if err := run([]string{"-spec", "bogus"}); err == nil {
		t.Error("bad spec accepted")
	}
	if err := run([]string{"-spec", "4x1", "-policy", "zzz"}); err == nil {
		t.Error("bad policy accepted")
	}
	if err := run([]string{"-spec", "4x1", "-ticks", "0"}); err == nil {
		t.Error("zero ticks accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSumCaps(t *testing.T) {
	if got := sumCaps([]int64{1, 2, 3}); got != 6 {
		t.Fatalf("sumCaps = %d", got)
	}
}

func TestBatchedPolicyRuns(t *testing.T) {
	if err := run([]string{"-spec", "8x1", "-arrivals", "4", "-ticks", "60", "-policy", "batched:8"}); err != nil {
		t.Fatalf("batched policy: %v", err)
	}
}

func TestPolicyNameInOutput(t *testing.T) {
	// smoke-check that report naming goes through (no capture needed —
	// naming logic already covered; ensure strings compose).
	_, name, err := parsePolicy("batched:4", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(name, "B=4") || !strings.Contains(name, "d=3") {
		t.Fatalf("name %q", name)
	}
}
