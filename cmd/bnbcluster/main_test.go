package main

import (
	"strings"
	"testing"

	balls "repro"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		d    int
		want string
	}{
		{"greedy", 2, "greedy(d=2)"},
		{"standard", 3, "standard(d=3)"},
		{"single", 2, "single"},
		{"goleft", 2, "goleft(d=2)"},
		{"batched:16", 2, "batched(d=2,B=16)"},
	}
	for _, c := range cases {
		f, name, err := parsePolicy(c.in, c.d)
		if err != nil {
			t.Fatalf("parsePolicy(%q): %v", c.in, err)
		}
		if f == nil || name != c.want {
			t.Errorf("parsePolicy(%q) = %q, want %q", c.in, name, c.want)
		}
	}
	for _, bad := range []string{"", "zzz", "batched:", "batched:x", "batched:0"} {
		if _, _, err := parsePolicy(bad, 2); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}

func TestParseChurn(t *testing.T) {
	events, err := parseChurn("down@5:2, up@9:2,down@12:0")
	if err != nil {
		t.Fatal(err)
	}
	want := []balls.ChurnEvent{
		{Tick: 5, Peer: 2, Down: true},
		{Tick: 9, Peer: 2, Down: false},
		{Tick: 12, Peer: 0, Down: true},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events[%d] = %+v, want %+v", i, events[i], want[i])
		}
	}
	if got, err := parseChurn(""); err != nil || got != nil {
		t.Fatalf("empty churn: %v, %v", got, err)
	}
	for _, bad := range []string{"down@5", "flip@5:2", "down@x:2", "down@5:y", "5:2"} {
		if _, err := parseChurn(bad); err == nil {
			t.Errorf("parseChurn(%q) accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-spec", "4x1+1x5", "-arrivals", "4", "-ticks", "100"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-spec", "4x1", "-arrivals", "2", "-ticks", "50", "-json"}); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	if err := run([]string{
		"-spec", "4x2", "-arrivals", "6", "-ticks", "60",
		"-churn", "down@5:1,up@20:1", "-crash-prob", "0.01", "-recover-prob", "0.2",
		"-timeout", "5", "-retries", "2", "-backoff", "2", "-shed", "3", "-workers", "2",
	}); err != nil {
		t.Fatalf("run with churn: %v", err)
	}
	if err := run([]string{"-spec", "4x1", "-arrivals", "3", "-ticks", "40", "-cancel-after-ticks", "10"}); err != nil {
		t.Fatalf("run cancelled: %v", err)
	}
	if err := run([]string{"-spec", "bogus"}); err == nil {
		t.Error("bad spec accepted")
	}
	if err := run([]string{"-spec", "4x1", "-churn", "flip@1:0"}); err == nil {
		t.Error("bad churn accepted")
	}
	if err := run([]string{"-spec", "4x1", "-churn", "down@1:9", "-ticks", "10"}); err == nil {
		t.Error("out-of-range churn peer accepted")
	}
	if err := run([]string{"-spec", "4x1", "-retries", "2", "-ticks", "10"}); err == nil {
		t.Error("retries without timeout accepted")
	}
	if err := run([]string{"-spec", "4x1", "-ticks", "0"}); err == nil {
		t.Error("zero ticks accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunLegacyEndToEnd(t *testing.T) {
	if err := run([]string{"-legacy", "-spec", "4x1+1x5", "-arrivals", "4", "-ticks", "100"}); err != nil {
		t.Fatalf("legacy run: %v", err)
	}
	if err := run([]string{"-legacy", "-spec", "4x1", "-arrivals", "2", "-ticks", "50", "-json"}); err != nil {
		t.Fatalf("legacy run -json: %v", err)
	}
	if err := run([]string{"-legacy", "-spec", "4x1", "-policy", "zzz"}); err == nil {
		t.Error("bad policy accepted")
	}
	if err := run([]string{"-legacy", "-spec", "8x1", "-arrivals", "4", "-ticks", "60", "-policy", "batched:8"}); err != nil {
		t.Fatalf("batched policy: %v", err)
	}
}

func TestSumCaps(t *testing.T) {
	if got := sumCaps([]int64{1, 2, 3}); got != 6 {
		t.Fatalf("sumCaps = %d", got)
	}
}

func TestPolicyNameInOutput(t *testing.T) {
	_, name, err := parsePolicy("batched:4", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(name, "B=4") || !strings.Contains(name, "d=3") {
		t.Fatalf("name %q", name)
	}
}
