package balls

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func clusterTestConfig() ClusterConfig {
	return ClusterConfig{
		Capacities: []int64{2, 3, 4, 5, 2, 4},
		Ticks:      24,
		Arrivals:   30,
		Seed:       7,
		Shards:     3,
		Churn: ChurnPlan{
			Schedule: []ChurnEvent{
				{Tick: 3, Peer: 3, Down: true},
				{Tick: 9, Peer: 3, Down: false},
			},
			CrashProb:   0.04,
			RecoverProb: 0.5,
		},
		Retry:         RetryPolicy{TimeoutTicks: 4, MaxRetries: 2, BackoffBase: 1},
		ShedThreshold: 2.5,
		Checkpoints:   []int64{6, 12, 24},
		Heights:       4,
	}
}

func TestSimulateClusterConservation(t *testing.T) {
	cfg := clusterTestConfig()
	res, err := SimulateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 6 || res.Shards != 3 || res.Ticks != cfg.Ticks {
		t.Fatalf("shape: N %d Shards %d Ticks %d", res.N, res.Shards, res.Ticks)
	}
	if res.Arrived != cfg.Arrivals*int64(cfg.Ticks) {
		t.Fatalf("Arrived = %d, want %d", res.Arrived, cfg.Arrivals*int64(cfg.Ticks))
	}
	if res.Arrived != res.Shed+res.Admitted {
		t.Fatalf("Arrived %d != Shed %d + Admitted %d", res.Arrived, res.Shed, res.Admitted)
	}
	if res.Admitted != res.Completed+res.Failed+res.PendingRetry+res.Queued {
		t.Fatalf("admitted %d not conserved: completed %d failed %d pending %d queued %d",
			res.Admitted, res.Completed, res.Failed, res.PendingRetry, res.Queued)
	}
	if res.Availability <= 0 || res.Availability > 1 {
		t.Fatalf("Availability = %v", res.Availability)
	}
	if len(res.LivePerTick) != cfg.Ticks {
		t.Fatalf("LivePerTick has %d entries", len(res.LivePerTick))
	}
	var latN int64
	for _, c := range res.LatencyBuckets {
		latN += c
	}
	if latN != res.Completed {
		t.Fatalf("latency histogram holds %d requests, completed %d", latN, res.Completed)
	}
	if res.Completed > 0 && res.MeanLatency < 1 {
		t.Fatalf("MeanLatency = %v with %d completions", res.MeanLatency, res.Completed)
	}
	if len(res.Checkpoints) != 3 || res.Checkpoints[2].Balls != 24 {
		t.Fatalf("checkpoints: %+v", res.Checkpoints)
	}
	if len(res.Heights) != 4 {
		t.Fatalf("heights: %+v", res.Heights)
	}
	var queued int64
	for i := 0; i < res.N; i++ {
		queued += int64(res.Loads.Balls(i))
	}
	if queued != res.Queued {
		t.Fatalf("Loads sum %d != Queued %d", queued, res.Queued)
	}
}

func TestSimulateClusterWorkerInvariance(t *testing.T) {
	cfg := clusterTestConfig()
	// A single trajectory has no across-rep spread, so CI95 fields are
	// NaN — which DeepEqual never matches. Zero them before comparing.
	normalize := func(r *ClusterResult) {
		r.Loads = LargeLoads{}
		for i := range r.Heights {
			r.Heights[i].BinsCI95 = 0
		}
	}
	base, err := SimulateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	normalize(base)
	for _, w := range []int{1, 2, 7} {
		c := cfg
		c.Workers = w
		got, err := SimulateCluster(c)
		if err != nil {
			t.Fatal(err)
		}
		normalize(got)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged:\n base %+v\n got  %+v", w, base, got)
		}
	}
}

func TestSimulateClusterCancellation(t *testing.T) {
	cfg := clusterTestConfig()
	cfg.CancelAfterTicks = 10
	part, err := SimulateCluster(cfg)
	var cancelled *CancelledError
	if !errors.As(err, &cancelled) {
		t.Fatalf("err = %v, want CancelledError", err)
	}
	if cancelled.CompletedTicks != 10 || part.Ticks != 10 {
		t.Fatalf("completed %d ticks, result says %d", cancelled.CompletedTicks, part.Ticks)
	}
	if part.MaxQueueLoad != 0 || part.Heights != nil {
		t.Fatal("cancelled partial carries final-state fields")
	}

	ref := clusterTestConfig()
	ref.Ticks = 10
	ref.Checkpoints = []int64{6}
	full, err := SimulateCluster(ref)
	if err != nil {
		t.Fatal(err)
	}
	if part.Admitted != full.Admitted || part.Completed != full.Completed ||
		part.Availability != full.Availability {
		t.Fatalf("prefix mismatch: partial {%d %d %v} vs Ticks=10 {%d %d %v}",
			part.Admitted, part.Completed, part.Availability,
			full.Admitted, full.Completed, full.Availability)
	}
	if cancelled.CompletedCuts != 1 || part.Checkpoints[0] != full.Checkpoints[0] {
		t.Fatalf("checkpoint prefix mismatch: cuts %d rows %+v vs %+v",
			cancelled.CompletedCuts, part.Checkpoints[:1], full.Checkpoints)
	}

	ctx, stop := context.WithCancel(context.Background())
	stop()
	cfg = clusterTestConfig()
	cfg.Context = ctx
	_, err = SimulateCluster(cfg)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("pre-fired context: err = %v", err)
	}
}

func TestSimulateClusterValidation(t *testing.T) {
	if _, err := SimulateCluster(ClusterConfig{Ticks: 1}); err == nil {
		t.Fatal("missing capacities accepted")
	}
	cfg := clusterTestConfig()
	cfg.Ticks = 0
	if _, err := SimulateCluster(cfg); err == nil {
		t.Fatal("Ticks=0 accepted")
	}
	cfg = clusterTestConfig()
	cfg.Retry = RetryPolicy{MaxRetries: 1}
	if _, err := SimulateCluster(cfg); err == nil {
		t.Fatal("retries without timeout accepted")
	}
}
