package balls

import "testing"

// BenchmarkSimulateLargeCheckpoints measures the same sharded
// million-bin run with the observation pipeline engaged (4 checkpoint
// cuts + a 4-level height table): the routing pass records prefixes,
// every shard segments its PlaceBatch at the block-aligned cuts, and
// the collectors fold. Compare against BenchmarkRunLargeSharded1W —
// the no-collector path — which bench_compare.sh fences at its
// committed allocs/op so the observation subsystem can never leak
// cost into runs that request nothing.
func BenchmarkSimulateLargeCheckpoints(b *testing.B) {
	caps := CapacitiesTwoClass(500000, 1, 500000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateLarge(LargeConfig{
			Capacities:  caps,
			Balls:       1_000_000,
			Seed:        1,
			Shards:      64,
			Workers:     1,
			Checkpoints: []int64{250_000, 500_000, 750_000, 1_000_000},
			Heights:     4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
