package balls

// The benchmark harness: one benchmark per paper figure (BenchmarkFig01…
// BenchmarkFig18), benchmarks for the validation/ablation experiments,
// and micro-benchmarks for the allocation hot path.
//
// Figure benchmarks execute the full experiment pipeline at a reduced
// problem scale (the per-iteration cost must stay in milliseconds for
// `go test -bench`); to regenerate a figure at paper scale use
// `go run ./cmd/bnbfig -fig figNN`. The point of benching every figure is
// (a) a regression fence around the experiment pipeline and (b) a
// one-command demonstration that every figure's code path runs.

import (
	"testing"

	"repro/internal/experiments"
)

// benchParams keeps per-iteration cost low while exercising the entire
// experiment code path.
func benchParams() experiments.Params {
	return experiments.Params{Reps: 3, Seed: 1, Scale: 0.02, Workers: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tabs, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkFig01(b *testing.B) { benchExperiment(b, "fig01") }
func BenchmarkFig02(b *testing.B) { benchExperiment(b, "fig02") }
func BenchmarkFig03(b *testing.B) { benchExperiment(b, "fig03") }
func BenchmarkFig04(b *testing.B) { benchExperiment(b, "fig04") }
func BenchmarkFig05(b *testing.B) { benchExperiment(b, "fig05") }
func BenchmarkFig06(b *testing.B) { benchExperiment(b, "fig06") }
func BenchmarkFig07(b *testing.B) { benchExperiment(b, "fig07") }
func BenchmarkFig08(b *testing.B) { benchExperiment(b, "fig08") }
func BenchmarkFig09(b *testing.B) { benchExperiment(b, "fig09") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }

func BenchmarkValidateObs1(b *testing.B)   { benchExperiment(b, "obs1") }
func BenchmarkValidateThm3(b *testing.B)   { benchExperiment(b, "thm3") }
func BenchmarkValidateThm5(b *testing.B)   { benchExperiment(b, "thm5") }
func BenchmarkValidateLemma1(b *testing.B) { benchExperiment(b, "lemma1") }
func BenchmarkLemma1Coupling(b *testing.B) { benchExperiment(b, "lemma1-coupling") }

func BenchmarkAblationTieBreak(b *testing.B) { benchExperiment(b, "ablation-tiebreak") }
func BenchmarkAblationDist(b *testing.B)     { benchExperiment(b, "ablation-dist") }
func BenchmarkExtOnePlusBeta(b *testing.B)   { benchExperiment(b, "ext-oneplusbeta") }
func BenchmarkExtHeights(b *testing.B)       { benchExperiment(b, "ext-heights") }
func BenchmarkExtBatch(b *testing.B)         { benchExperiment(b, "ext-batch") }
func BenchmarkExtHeavyHet(b *testing.B)      { benchExperiment(b, "ext-heavyhet") }
func BenchmarkExtMigration(b *testing.B)     { benchExperiment(b, "ext-migration") }
func BenchmarkExtWieder(b *testing.B)        { benchExperiment(b, "ext-wieder") }
func BenchmarkExtFairness(b *testing.B)      { benchExperiment(b, "ext-fairness") }
func BenchmarkExtCluster(b *testing.B)       { benchExperiment(b, "ext-cluster") }
func BenchmarkExtTune(b *testing.B)          { benchExperiment(b, "ext-tune") }

// --- hot-path micro-benchmarks -----------------------------------------

// benchSystem builds a mixed 1/10 array, the configuration where
// Algorithm 1's full tie-break logic is exercised.
func benchSystem(b *testing.B, p Protocol) *System {
	b.Helper()
	sys, err := NewSystem(CapacitiesTwoClass(5000, 1, 5000, 10),
		WithProtocol(p), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkPlaceGreedyD2(b *testing.B) {
	sys := benchSystem(b, Greedy(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Place()
	}
}

func BenchmarkPlaceGreedyD4(b *testing.B) {
	sys := benchSystem(b, Greedy(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Place()
	}
}

func BenchmarkPlaceStandardD2(b *testing.B) {
	sys := benchSystem(b, StandardDChoice(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Place()
	}
}

func BenchmarkPlaceSingle(b *testing.B) {
	sys := benchSystem(b, SingleChoice())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Place()
	}
}

func BenchmarkPlaceGoLeftD2(b *testing.B) {
	sys := benchSystem(b, AlwaysGoLeft(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Place()
	}
}

func BenchmarkSimulateSmall(b *testing.B) {
	cfg := SimConfig{
		Capacities: CapacitiesTwoClass(500, 1, 500, 10),
		Reps:       10,
		Seed:       1,
		Workers:    1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRunLarge measures ONE sharded million-bin repetition end to end
// (routing + parallel per-shard placement). The 1-worker/4-worker pair
// exposes the single-run scaling the sharded engine exists for; the
// final states are bit-identical by contract regardless of workers.
func benchRunLarge(b *testing.B, workers int) {
	b.Helper()
	caps := CapacitiesTwoClass(500000, 1, 500000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateLarge(LargeConfig{
			Capacities: caps,
			Balls:      1_000_000,
			Seed:       1,
			Shards:     64,
			Workers:    workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunLargeSharded1W(b *testing.B) { benchRunLarge(b, 1) }
func BenchmarkRunLargeSharded4W(b *testing.B) { benchRunLarge(b, 4) }

// benchRunStream measures the streaming engine at n = 10^6: arrivals,
// deletions and rebalance every round, reported as rounds/sec. The
// alloc counters cover the whole run including setup; the engine's
// steady-state zero-allocation guarantee (no per-round allocations
// after warm-up) is asserted exactly by
// internal/sim.TestStreamSteadyStateAllocFree.
func benchRunStream(b *testing.B, workers int) {
	b.Helper()
	caps := CapacitiesTwoClass(500000, 1, 500000, 10)
	const rounds = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateStream(StreamConfig{
			Capacities:   caps,
			Rounds:       rounds,
			Arrivals:     250_000,
			Deletions:    100_000,
			RebalanceTol: 0.2,
			Seed:         1,
			Shards:       64,
			Workers:      workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*rounds)/b.Elapsed().Seconds(), "rounds/sec")
}

func BenchmarkRunStream1W(b *testing.B) { benchRunStream(b, 1) }
func BenchmarkRunStream4W(b *testing.B) { benchRunStream(b, 4) }

// benchClusterTick measures the churn-tolerant serving engine with all
// degraded-mode machinery armed — stochastic churn (so ring re-shards
// and queue redistribution fire), timeouts with retries, and admission
// control — reported as ticks/sec.
func benchClusterTick(b *testing.B, workers int) {
	b.Helper()
	caps := CapacitiesTwoClass(50_000, 1, 50_000, 10)
	const ticks = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateCluster(ClusterConfig{
			Capacities: caps,
			Ticks:      ticks,
			Arrivals:   400_000,
			Churn: ChurnPlan{
				CrashProb:   0.0002,
				RecoverProb: 0.05,
			},
			Retry:         RetryPolicy{TimeoutTicks: 2, MaxRetries: 2, BackoffBase: 1},
			ShedThreshold: 3,
			Seed:          1,
			Shards:        64,
			Workers:       workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*ticks)/b.Elapsed().Seconds(), "ticks/sec")
}

func BenchmarkClusterTick1W(b *testing.B) { benchClusterTick(b, 1) }
func BenchmarkClusterTick4W(b *testing.B) { benchClusterTick(b, 4) }

// benchRunLargeMonte measures the sharded Monte-Carlo engine: several
// repetitions of a large sharded game per iteration, with per-shard
// tasks nested inside repetition orchestration on the shared pool.
func benchRunLargeMonte(b *testing.B, workers int) {
	b.Helper()
	caps := CapacitiesTwoClass(100_000, 1, 100_000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloLarge(MonteLargeConfig{
			LargeConfig: LargeConfig{
				Capacities: caps,
				Balls:      200_000,
				Seed:       1,
				Shards:     64,
				Workers:    workers,
			},
			Reps: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunLargeMonte1W(b *testing.B) { benchRunLargeMonte(b, 1) }
func BenchmarkRunLargeMonte4W(b *testing.B) { benchRunLargeMonte(b, 4) }

func BenchmarkNewSystem(b *testing.B) {
	caps := CapacitiesTwoClass(5000, 1, 5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSystem(caps); err != nil {
			b.Fatal(err)
		}
	}
}
