package balls

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := NewSystem([]int64{0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewSystem([]int64{1, 2}, WithProtocol(Greedy(0))); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := NewSystem([]int64{1, 2}, WithDistribution(TopOnlySelection(100))); err == nil {
		t.Error("unreachable top-only threshold accepted")
	}
	if _, err := NewSystem([]int64{1, 2}, WithDistribution(CustomSelection([]float64{1}))); err == nil {
		t.Error("short custom weights accepted")
	}
}

func TestSystemBasics(t *testing.T) {
	sys, err := NewSystem(CapacitiesTwoClass(2, 1, 2, 4), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 4 || sys.TotalCapacity() != 10 {
		t.Fatalf("N=%d C=%d", sys.N(), sys.TotalCapacity())
	}
	if sys.Capacity(0) != 1 || sys.Capacity(3) != 4 {
		t.Fatal("capacities misordered")
	}
	idx := sys.Place()
	if idx < 0 || idx >= 4 {
		t.Fatalf("Place returned %d", idx)
	}
	if sys.TotalBalls() != 1 {
		t.Fatalf("TotalBalls = %d", sys.TotalBalls())
	}
	sys.PlaceN(9)
	if sys.TotalBalls() != 10 {
		t.Fatalf("TotalBalls = %d", sys.TotalBalls())
	}
	if got := sys.AverageLoad(); got != 1 {
		t.Fatalf("AverageLoad = %v", got)
	}
	loads := sys.Loads()
	if len(loads) != 4 {
		t.Fatalf("Loads length %d", len(loads))
	}
	var sumBalls int64
	for i := 0; i < 4; i++ {
		sumBalls += sys.BallCount(i)
		if math.Abs(loads[i]-sys.Load(i)) > 1e-15 {
			t.Fatal("Loads and Load disagree")
		}
	}
	if sumBalls != 10 {
		t.Fatal("ball counts do not sum")
	}
	if sys.MaxLoad() < sys.AverageLoad() {
		t.Fatal("max below average")
	}
	mx := sys.MaxLoadedBins()
	if len(mx) == 0 {
		t.Fatal("no max-loaded bins")
	}
	for _, i := range mx {
		if sys.Load(i) != sys.MaxLoad() {
			t.Fatal("MaxLoadedBins returned non-maximal bin")
		}
	}
}

func TestSystemResetReproduces(t *testing.T) {
	sys, err := NewSystem(CapacitiesUniform(16, 2), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	sys.PlaceN(32)
	first := sys.Loads()
	sys.Reset()
	if sys.TotalBalls() != 0 {
		t.Fatal("Reset did not clear balls")
	}
	sys.PlaceN(32)
	second := sys.Loads()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Reset run did not reproduce the first run")
		}
	}
}

func TestSystemNames(t *testing.T) {
	sys, err := NewSystem(CapacitiesUniform(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sys.ProtocolName() != "greedy(d=2)" {
		t.Fatalf("default protocol %q", sys.ProtocolName())
	}
	if sys.DistributionName() != "proportional" {
		t.Fatalf("default distribution %q", sys.DistributionName())
	}
	sys2, err := NewSystem(CapacitiesUniform(4, 1),
		WithProtocol(StandardDChoice(3)), WithDistribution(UniformSelection()))
	if err != nil {
		t.Fatal(err)
	}
	if sys2.ProtocolName() != "standard(d=3)" || sys2.DistributionName() != "uniform" {
		t.Fatalf("names %q / %q", sys2.ProtocolName(), sys2.DistributionName())
	}
	// zero-value Distribution and Protocol have sensible names
	var d Distribution
	if d.Name() != "proportional" {
		t.Fatal("zero Distribution name")
	}
	var p Protocol
	if p.Name() != "greedy(d=2)" {
		t.Fatal("zero Protocol name")
	}
}

func TestCapacityBuilders(t *testing.T) {
	u := CapacitiesUniform(5, 3)
	if len(u) != 5 || u[4] != 3 {
		t.Fatalf("uniform = %v", u)
	}
	tc := CapacitiesTwoClass(2, 1, 3, 9)
	if len(tc) != 5 || tc[0] != 1 || tc[4] != 9 {
		t.Fatalf("two-class = %v", tc)
	}
	rb, err := CapacitiesRandomBinomial(1000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range rb {
		if c < 1 || c > 8 {
			t.Fatalf("binomial capacity %d", c)
		}
		sum += c
	}
	if math.Abs(float64(sum)/1000-4) > 0.3 {
		t.Fatalf("binomial mean %v", float64(sum)/1000)
	}
	if _, err := CapacitiesRandomBinomial(10, 99, 1); err == nil {
		t.Error("bad mean accepted")
	}
	lg, err := CapacitiesLinearGrowth(2, 20, 42, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg) != 42 || lg[0] != 2 || lg[41] != 10 {
		t.Fatalf("linear growth = %v", lg)
	}
	eg, err := CapacitiesExponentialGrowth(2, 20, 42, 2, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(eg) != 42 || eg[0] != 2 {
		t.Fatalf("exp growth = %v", eg)
	}
	ps, err := ParseCapacitySpec("2x1+1x7")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 || ps[2] != 7 {
		t.Fatalf("spec = %v", ps)
	}
	if _, err := ParseCapacitySpec("junk"); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestSimulateBasics(t *testing.T) {
	res, err := Simulate(SimConfig{
		Capacities:  CapacitiesTwoClass(50, 1, 50, 10),
		Reps:        50,
		Seed:        5,
		SortedLoads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 50 {
		t.Fatalf("Reps = %d", res.Reps)
	}
	if res.Balls != 550 {
		t.Fatalf("Balls = %d, want C = 550", res.Balls)
	}
	if res.AverageLoad != 1 {
		t.Fatalf("AverageLoad = %v", res.AverageLoad)
	}
	if res.MeanMaxLoad <= 1 || res.MeanMaxLoad > 6 {
		t.Fatalf("MeanMaxLoad = %v", res.MeanMaxLoad)
	}
	if res.WorstMaxLoad < res.MeanMaxLoad {
		t.Fatal("worst < mean")
	}
	if len(res.MeanSortedLoads) != 100 {
		t.Fatalf("sorted loads length %d", len(res.MeanSortedLoads))
	}
	if res.TheoryBound <= 0 {
		t.Fatal("TheoryBound missing")
	}
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestSimulateCheckpoints(t *testing.T) {
	res, err := Simulate(SimConfig{
		Capacities:  CapacitiesUniform(32, 1),
		BallsFactor: 4,
		Reps:        20,
		Checkpoints: []int64{32, 64, 96, 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 4 {
		t.Fatalf("%d checkpoints", len(res.Checkpoints))
	}
	for i, cp := range res.Checkpoints {
		if cp.Balls != int64(32*(i+1)) {
			t.Fatalf("checkpoint %d at %d balls", i, cp.Balls)
		}
		if cp.MeanDeviation < 0 {
			t.Fatal("negative deviation")
		}
	}
	// heavy-case invariance: deviation at 4C within noise of deviation at 2C
	d2, d4 := res.Checkpoints[1].MeanDeviation, res.Checkpoints[3].MeanDeviation
	if d4 > d2+1.0 {
		t.Fatalf("deviation grew sharply with m: %v -> %v", d2, d4)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{Capacities: CapacitiesUniform(64, 2), Reps: 30, Seed: 9}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanMaxLoad != b.MeanMaxLoad || a.MeanDeviation != b.MeanDeviation {
		t.Fatal("Simulate not deterministic")
	}
}

func TestSimulateAllProtocolsAndDistributions(t *testing.T) {
	caps := CapacitiesTwoClass(20, 1, 20, 5)
	protocols := []Protocol{
		Greedy(2), Greedy(4), StandardDChoice(2), SingleChoice(),
		AlwaysGoLeft(2), OnePlusBetaChoice(0.5),
	}
	dists := []Distribution{
		Proportional(), UniformSelection(), PowerSelection(1.7),
		TopOnlySelection(5), CustomSelection(weightsFor(caps)),
	}
	for _, p := range protocols {
		for _, d := range dists {
			res, err := Simulate(SimConfig{
				Capacities:   caps,
				Reps:         10,
				Seed:         31,
				Protocol:     p,
				Distribution: d,
			})
			// go-left partitions bins into contiguous groups, so a
			// distribution that zeroes out a whole group (top-only zeroes
			// all the small bins, which sit in group 0) must be rejected.
			if p.Name() == "goleft(d=2)" && d.Name() == "top-only(c>=5)" {
				if err == nil {
					t.Fatalf("%s/%s: invalid combination accepted", p.Name(), d.Name())
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name(), d.Name(), err)
			}
			if res.MeanMaxLoad < res.AverageLoad {
				t.Fatalf("%s/%s: max %v below average %v", p.Name(), d.Name(),
					res.MeanMaxLoad, res.AverageLoad)
			}
		}
	}
}

func weightsFor(caps []int64) []float64 {
	w := make([]float64, len(caps))
	for i, c := range caps {
		w[i] = float64(c) + 0.5
	}
	return w
}

// TestSimulateConcurrentCallers: independent Simulate calls may run in
// parallel from multiple goroutines (each run has its own arrays and
// RNGs). Run with -race to verify.
func TestSimulateConcurrentCallers(t *testing.T) {
	cfg := SimConfig{
		Capacities: CapacitiesTwoClass(50, 1, 50, 10),
		Reps:       20,
		Seed:       13,
	}
	want, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([]*SimResult, callers)
	errs := make([]error, callers)
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			results[i], errs[i] = Simulate(cfg)
			done <- i
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].MeanMaxLoad != want.MeanMaxLoad {
			t.Fatalf("concurrent caller %d diverged: %v vs %v",
				i, results[i].MeanMaxLoad, want.MeanMaxLoad)
		}
	}
}

func TestSimulateRejectsBadProtocolConfig(t *testing.T) {
	_, err := Simulate(SimConfig{
		Capacities: CapacitiesUniform(4, 1),
		Protocol:   Greedy(-1),
		Reps:       2,
	})
	if err == nil {
		t.Fatal("negative d accepted")
	}
	_, err = Simulate(SimConfig{
		Capacities:   CapacitiesUniform(4, 1),
		Distribution: CustomSelection([]float64{1}),
		Reps:         2,
	})
	if err == nil {
		t.Fatal("short custom weights accepted")
	}
}

// Property: for any capacities, placing m = C balls gives average load 1
// and max load >= 1.
func TestQuickSystemMassBalance(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		caps := make([]int64, len(raw))
		for i, v := range raw {
			caps[i] = int64(v%9) + 1
		}
		sys, err := NewSystem(caps, WithSeed(seed))
		if err != nil {
			return false
		}
		sys.PlaceN(sys.TotalCapacity())
		if sys.AverageLoad() != 1 {
			return false
		}
		return sys.MaxLoad() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
