// Command large-n demonstrates the sharded single-run engine: one
// million-bin game placed across worker counts, showing that the wall
// clock scales with cores while the final state stays bit-identical —
// the determinism contract of balls.SimulateLarge (only capacities,
// balls, seed, shards, distribution and protocol determine the result;
// workers never do).
//
//	go run ./examples/large-n [-n 1000000] [-shards 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	balls "repro"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of bins (half capacity 1, half capacity 10)")
	shards := flag.Int("shards", 64, "shard count (part of the model)")
	flag.Parse()

	caps := balls.CapacitiesTwoClass(*n/2, 1, *n-*n/2, 10)
	fmt.Printf("one game: n = %d bins, m = C balls, greedy d=2, %d shards\n\n", *n, *shards)

	workerCounts := []int{1, 2, 4}
	if c := runtime.GOMAXPROCS(0); c > 4 {
		workerCounts = append(workerCounts, c)
	}

	var first *balls.LargeResult
	var baseline time.Duration
	for _, w := range workerCounts {
		start := time.Now()
		res, err := balls.SimulateLarge(balls.LargeConfig{
			Capacities: caps,
			Seed:       1,
			Shards:     *shards,
			Workers:    w,
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if first == nil {
			first = res
			baseline = elapsed
		}
		fmt.Printf("workers=%d: max load %.4f (avg %.4f)  wall %8s  speedup %.2fx\n",
			w, res.MaxLoad, res.AverageLoad, elapsed.Round(time.Millisecond),
			float64(baseline)/float64(elapsed))
		for i := 0; i < res.Loads.N(); i++ {
			if res.Loads.Balls(i) != first.Loads.Balls(i) {
				fmt.Fprintf(os.Stderr, "DETERMINISM VIOLATION: bin %d differs at workers=%d\n", i, w)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("\nfinal state bit-identical across all worker counts ✓\n")
	fmt.Printf("(on a single-core machine the speedup column stays ~1x — the\n")
	fmt.Printf("contract that matters everywhere is identical bits; the scaling\n")
	fmt.Printf("shows up wherever GOMAXPROCS cores exist)\n")
}
