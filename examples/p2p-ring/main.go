// P2P ring (§1 motivation): consistent hashing maps peers to random arcs
// whose lengths — and hence selection probabilities — are badly skewed
// (max/avg ≈ ln n). This example measures that skew, plays the Byers et
// al. d-point game on the ring, and then reuses the arc lengths as a
// custom selection distribution for the library's unit-capacity game,
// showing the two views coincide.
package main

import (
	"fmt"
	"log"
	"math"

	balls "repro"
	"repro/internal/chash"
	"repro/internal/xrand"
)

func main() {
	const (
		peers = 1000
		seed  = 99
	)
	rng := xrand.New(seed)
	ring, err := chash.NewRing(peers, 1, rng)
	if err != nil {
		log.Fatal(err)
	}
	st := ring.Stats()
	fmt.Printf("ring with %d peers: max arc / avg arc = %.2f (ln n = %.2f)\n",
		peers, st.MaxOverAvg, math.Log(peers))

	// Byers et al.: d random points, place on the least-loaded owner.
	for _, d := range []int{1, 2} {
		loads, err := ring.DChoiceLoads(peers, d, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ring game, d=%d: max load %d (m = n = %d)\n",
			d, chash.MaxLoad(loads), peers)
	}

	// The same game through the library: unit-capacity bins whose
	// selection weights are the arc lengths.
	sys, err := balls.NewSystem(
		balls.CapacitiesUniform(peers, 1),
		balls.WithDistribution(balls.CustomSelection(ring.ArcLengths())),
		balls.WithProtocol(balls.StandardDChoice(2)),
		balls.WithSeed(seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	sys.PlaceN(int64(peers))
	fmt.Printf("library game with arc weights, d=2: max load %.0f\n", sys.MaxLoad())

	fmt.Println()
	fmt.Println("despite the ln(n)-skewed arcs, two choices keep the maximum load")
	fmt.Println("at lnln(n)/ln(2)+O(1) — the Byers et al. result the paper builds on.")
	fmt.Println()

	// The paper's step beyond Byers: peers with heterogeneous capacity.
	// Give each peer a capacity and select proportionally to it.
	caps := balls.CapacitiesTwoClass(peers/2, 1, peers/2, 10)
	het, err := balls.NewSystem(caps, balls.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	het.PlaceN(het.TotalCapacity())
	fmt.Printf("heterogeneous peers (half capacity 10), m=C: max relative load %.3f\n",
		het.MaxLoad())

	// Churn on the ring itself: removing a peer hands its arcs to the
	// clockwise successors, re-adding it restores the original ring bit
	// for bit — no rehashing, no RNG draws. This incremental AddPeer/
	// RemovePeer is what the serving engine leans on when servers crash
	// and recover mid-run (see examples/cluster-sim).
	fmt.Println()
	churnRing, err := chash.NewRing(peers, 1, xrand.New(seed))
	if err != nil {
		log.Fatal(err)
	}
	before := churnRing.ArcLengths()
	victims := []int{3, 250, 999}
	for _, p := range victims {
		if err := churnRing.RemovePeer(p); err != nil {
			log.Fatal(err)
		}
	}
	absorbed := 0.0
	for _, p := range victims {
		absorbed += before[p]
	}
	fmt.Printf("churn: removed peers %v — %.4f of the circle re-owned, %d peers live\n",
		victims, absorbed, churnRing.NumLive())
	loads, err := churnRing.DChoiceLoads(peers, 2, xrand.New(seed+1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring game on the degraded ring, d=2: max load %d, dead peers got %d\n",
		chash.MaxLoad(loads), loads[victims[0]]+loads[victims[1]]+loads[victims[2]])
	for _, p := range victims {
		if err := churnRing.AddPeer(p); err != nil {
			log.Fatal(err)
		}
	}
	after := churnRing.ArcLengths()
	for i := range before {
		if before[i] != after[i] {
			log.Fatalf("arc %d changed across churn: %v != %v", i, before[i], after[i])
		}
	}
	fmt.Println("re-added all three: every arc restored bit-identically")
}
