// Probability tuning (§4.5): when capacities differ a lot, selecting
// bins proportionally to capacity (exponent t = 1) is NOT optimal. This
// example sweeps the exponent t in the power family p_i ∝ c_i^t for a
// 50/50 mix of capacities 1 and 3 and locates the optimum — the paper
// reports ≈ 2.1 for this array (Figure 17).
package main

import (
	"fmt"
	"log"

	balls "repro"
)

func main() {
	caps := balls.CapacitiesTwoClass(50, 1, 50, 3)
	const reps = 4000

	fmt.Println("50 bins of capacity 1 + 50 of capacity 3, m = C = 200, d = 2")
	fmt.Println("  t   | mean max load")

	bestT, bestLoad := 0.0, 0.0
	first := true
	for t := 1.0; t <= 3.01; t += 0.1 {
		res, err := balls.Simulate(balls.SimConfig{
			Capacities:   caps,
			Reps:         reps,
			Seed:         17,
			Distribution: balls.PowerSelection(t),
		})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if first || res.MeanMaxLoad < bestLoad {
			bestT, bestLoad = t, res.MeanMaxLoad
			first = false
		}
		if t == 1.0 {
			marker = "  <- proportional (the default)"
		}
		fmt.Printf(" %.2f | %.4f%s\n", t, res.MeanMaxLoad, marker)
	}

	fmt.Printf("\noptimal exponent ≈ %.2f with mean max load %.4f\n", bestT, bestLoad)
	fmt.Println("overweighting the big bins beyond proportionality helps: they can")
	fmt.Println("absorb extra balls at little load cost (the paper's Figure 17/18).")
}
