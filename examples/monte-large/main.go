// Command monte-large demonstrates the sharded Monte-Carlo engine:
// many repetitions of a huge sharded game, with per-shard parallelism
// nested inside repetition parallelism on one shared worker pool. The
// aggregate (mean/worst max load, the paper's gap with a confidence
// interval) streams out of the engine without ever holding more than
// min(workers, reps) bin arrays — the regime where the paper's
// greedy-d-choice gap bounds become empirically sharp.
//
//	go run ./examples/monte-large [-n 500000] [-reps 50] [-shards 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"reflect"
	"runtime"
	"time"

	balls "repro"
)

func main() {
	n := flag.Int("n", 500_000, "number of bins (half capacity 1, half capacity 10)")
	reps := flag.Int("reps", 50, "independent repetitions")
	shards := flag.Int("shards", 64, "shard count (part of the model)")
	flag.Parse()

	caps := balls.CapacitiesTwoClass(*n/2, 1, *n-*n/2, 10)
	var total int64
	for _, c := range caps {
		total += c
	}
	// Mid-run observations ride along: checkpoints at C/4, C/2, C
	// (realised through block-aligned per-shard cuts) plus the final
	// bins-at-load>=k table. They are part of the bit-identity check.
	checkpoints := []int64{total / 4, total / 2, total}
	fmt.Printf("monte-carlo: n = %d bins, m = C balls, greedy d=2, %d shards × %d reps\n\n",
		*n, *shards, *reps)

	workerCounts := []int{1, 2, 4}
	if c := runtime.GOMAXPROCS(0); c > 4 {
		workerCounts = append(workerCounts, c)
	}

	var first *balls.MonteLargeResult
	var baseline time.Duration
	for _, w := range workerCounts {
		start := time.Now()
		res, err := balls.MonteCarloLarge(balls.MonteLargeConfig{
			LargeConfig: balls.LargeConfig{
				Capacities:  caps,
				Seed:        1,
				Shards:      *shards,
				Workers:     w,
				Checkpoints: checkpoints,
				Heights:     4,
			},
			Reps:       *reps,
			ShardStats: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if first == nil {
			first = res
			baseline = elapsed
		}
		fmt.Printf("workers=%d: max %.4f ± %.4f (worst %.4f)  gap %.4f  wall %8s  speedup %.2fx\n",
			w, res.MeanMaxLoad, res.MaxLoadCI95, res.WorstMaxLoad, res.MeanDeviation,
			elapsed.Round(time.Millisecond), float64(baseline)/float64(elapsed))
		if res.MeanMaxLoad != first.MeanMaxLoad || res.MeanDeviation != first.MeanDeviation ||
			res.WorstMaxLoad != first.WorstMaxLoad {
			log.Fatalf("DETERMINISM VIOLATION: aggregate differs at workers=%d", w)
		}
		if !reflect.DeepEqual(res.Checkpoints, first.Checkpoints) || !sameHeights(res.Heights, first.Heights) {
			log.Fatalf("DETERMINISM VIOLATION: observations differ at workers=%d", w)
		}
	}
	fmt.Printf("\nmid-run trajectory (mean over %d reps):\n", *reps)
	for _, cp := range first.Checkpoints {
		fmt.Printf("  after ~%9d balls (realised %9.0f): max %.4f, gap %.4f\n",
			cp.Balls, cp.MeanBalls, cp.MeanMaxLoad, cp.MeanDeviation)
	}
	fmt.Println("final bins at load >= k:")
	for _, h := range first.Heights {
		fmt.Printf("  k=%-3d %12.1f ± %.1f\n", h.Level, h.MeanBins, h.BinsCI95)
	}
	// The per-shard view: how evenly the two-level protocol spreads
	// work. Contiguous shards of a two-class array carry different
	// total weights, so routed counts differ BY DESIGN — the question
	// the stats answer is whether any shard's local game runs hot.
	lo, hi := first.ShardStats[0], first.ShardStats[0]
	worst := 0.0
	for _, s := range first.ShardStats {
		if s.MeanBalls < lo.MeanBalls {
			lo = s
		}
		if s.MeanBalls > hi.MeanBalls {
			hi = s
		}
		if s.WorstMaxLoad > worst {
			worst = s.WorstMaxLoad
		}
	}
	fmt.Printf("shard imbalance over %d shards:\n", len(first.ShardStats))
	fmt.Printf("  lightest shard %3d: %10.1f ± %.1f balls/rep (max load %.4f mean)\n",
		lo.Shard, lo.MeanBalls, lo.BallsCI95, lo.MeanMaxLoad)
	fmt.Printf("  heaviest shard %3d: %10.1f ± %.1f balls/rep (max load %.4f mean)\n",
		hi.Shard, hi.MeanBalls, hi.BallsCI95, hi.MeanMaxLoad)
	fmt.Printf("  worst shard-local max load anywhere: %.4f\n", worst)
	fmt.Printf("\naggregate AND observations bit-identical across all worker counts ✓\n")
	fmt.Printf("(repetition 0 reproduces balls.SimulateLarge exactly; each further\n")
	fmt.Printf("repetition offsets the stream layout by shards+1 — the topology of\n")
	fmt.Printf("workers over shards and repetitions never touches a single bit)\n")
}

// sameHeights compares height rows on Level and MeanBins only: with a
// single repetition BinsCI95 is NaN, and NaN != NaN would turn a
// bit-identical result into a false determinism violation under
// reflect.DeepEqual.
func sameHeights(a, b []balls.HeightResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Level != b[i].Level || a[i].MeanBins != b[i].MeanBins {
			return false
		}
	}
	return true
}
