// Command monte-large demonstrates the sharded Monte-Carlo engine:
// many repetitions of a huge sharded game, with per-shard parallelism
// nested inside repetition parallelism on one shared worker pool. The
// aggregate (mean/worst max load, the paper's gap with a confidence
// interval) streams out of the engine without ever holding more than
// min(workers, reps) bin arrays — the regime where the paper's
// greedy-d-choice gap bounds become empirically sharp.
//
//	go run ./examples/monte-large [-n 500000] [-reps 50] [-shards 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	balls "repro"
)

func main() {
	n := flag.Int("n", 500_000, "number of bins (half capacity 1, half capacity 10)")
	reps := flag.Int("reps", 50, "independent repetitions")
	shards := flag.Int("shards", 64, "shard count (part of the model)")
	flag.Parse()

	caps := balls.CapacitiesTwoClass(*n/2, 1, *n-*n/2, 10)
	fmt.Printf("monte-carlo: n = %d bins, m = C balls, greedy d=2, %d shards × %d reps\n\n",
		*n, *shards, *reps)

	workerCounts := []int{1, 2, 4}
	if c := runtime.GOMAXPROCS(0); c > 4 {
		workerCounts = append(workerCounts, c)
	}

	var first *balls.MonteLargeResult
	var baseline time.Duration
	for _, w := range workerCounts {
		start := time.Now()
		res, err := balls.MonteCarloLarge(balls.MonteLargeConfig{
			LargeConfig: balls.LargeConfig{
				Capacities: caps,
				Seed:       1,
				Shards:     *shards,
				Workers:    w,
			},
			Reps: *reps,
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if first == nil {
			first = res
			baseline = elapsed
		}
		fmt.Printf("workers=%d: max %.4f ± %.4f (worst %.4f)  gap %.4f  wall %8s  speedup %.2fx\n",
			w, res.MeanMaxLoad, res.MaxLoadCI95, res.WorstMaxLoad, res.MeanDeviation,
			elapsed.Round(time.Millisecond), float64(baseline)/float64(elapsed))
		if res.MeanMaxLoad != first.MeanMaxLoad || res.MeanDeviation != first.MeanDeviation ||
			res.WorstMaxLoad != first.WorstMaxLoad {
			log.Fatalf("DETERMINISM VIOLATION: aggregate differs at workers=%d", w)
		}
	}
	fmt.Printf("\naggregate bit-identical across all worker counts ✓\n")
	fmt.Printf("(repetition 0 reproduces balls.SimulateLarge exactly; each further\n")
	fmt.Printf("repetition offsets the stream layout by shards+1 — the topology of\n")
	fmt.Printf("workers over shards and repetitions never touches a single bit)\n")
}
