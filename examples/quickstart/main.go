// Quickstart: allocate m = C balls into a mixed array of small and large
// bins with the paper's Algorithm 1 and compare the maximum load against
// the single-choice baseline and the ln ln(n)/ln(2) theory term.
package main

import (
	"fmt"
	"log"

	balls "repro"
)

func main() {
	// 900 unit-capacity bins plus 100 bins of capacity 10: half of the
	// total capacity sits in 10% of the bins.
	caps := balls.CapacitiesTwoClass(900, 1, 100, 10)

	sys, err := balls.NewSystem(caps, balls.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d bins, total capacity %d, protocol %s, selection %s\n",
		sys.N(), sys.TotalCapacity(), sys.ProtocolName(), sys.DistributionName())

	// The paper's baseline workload: as many balls as capacity units.
	sys.PlaceN(sys.TotalCapacity())
	fmt.Printf("after m = C balls: max load %.3f (average %.3f)\n",
		sys.MaxLoad(), sys.AverageLoad())

	// Where did the maximum land?
	maxBins := sys.MaxLoadedBins()
	fmt.Printf("%d bins attain the max; e.g.", len(maxBins))
	for _, i := range maxBins[:min(3, len(maxBins))] {
		fmt.Printf(" bin %d (capacity %d, %d balls)", i, sys.Capacity(i), sys.BallCount(i))
	}
	fmt.Println()

	// Monte-Carlo comparison: Algorithm 1 vs single choice vs the
	// capacity-oblivious standard 2-choice.
	for _, p := range []balls.Protocol{
		balls.Greedy(2), balls.StandardDChoice(2), balls.SingleChoice(),
	} {
		res, err := balls.Simulate(balls.SimConfig{
			Capacities: caps,
			Reps:       200,
			Seed:       7,
			Protocol:   p,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s mean max load %.3f ± %.3f (worst %.3f)\n",
			p.Name(), res.MeanMaxLoad, res.MaxLoadCI95, res.WorstMaxLoad)
	}

	res, err := balls.Simulate(balls.SimConfig{Capacities: caps, Reps: 200, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theory: lnln(n)/ln(2) = %.3f — the greedy max load stays within O(1) of it\n",
		res.TheoryBound)
}
