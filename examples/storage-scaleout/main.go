// Storage scale-out (§4.3): a storage cluster starts with two disks and
// grows in yearly batches of 20; each generation of disks is bigger than
// the last. Data items (balls) are redistributed with Algorithm 1 after
// every expansion. The experiment shows the maximum relative disk load
// *falls* as the heterogeneous system grows, while a same-size uniform
// cluster stays flat.
package main

import (
	"fmt"
	"log"

	balls "repro"
)

func main() {
	fmt.Println("cluster growth: max relative load after re-allocation (m = C, 100 reps)")
	fmt.Println("disks | uniform(all=2) | linear(+4/gen) | exponential(x1.4/gen)")

	// 402 disks = 20 generations; beyond that the 1.4x exponential model
	// implies multi-million-unit capacities and ball counts (see
	// EXPERIMENTS.md, Figure 15).
	for _, disks := range []int{2, 62, 142, 222, 302, 402} {
		uniform := balls.CapacitiesUniform(disks, 2)

		linear, err := balls.CapacitiesLinearGrowth(2, 20, disks, 2, 4)
		if err != nil {
			log.Fatal(err)
		}
		expo, err := balls.CapacitiesExponentialGrowth(2, 20, disks, 2, 1.4)
		if err != nil {
			log.Fatal(err)
		}

		row := []float64{}
		for _, caps := range [][]int64{uniform, linear, expo} {
			res, err := balls.Simulate(balls.SimConfig{
				Capacities: caps,
				Reps:       100,
				Seed:       11,
			})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.MeanMaxLoad)
		}
		fmt.Printf("%5d | %14.3f | %14.3f | %21.3f\n", disks, row[0], row[1], row[2])
	}

	fmt.Println()
	fmt.Println("larger generations pull balls away from old small disks, so the")
	fmt.Println("worst-case relative load improves as the cluster scales out —")
	fmt.Println("the paper's Figures 14 and 15.")
}
