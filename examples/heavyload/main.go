// Heavily loaded case (§4.4): throw far more balls than capacity and
// watch the gap between the maximum and the average load. The paper's
// Figure 16 finding — and the Berenbrink et al. theory for the uniform
// case — is that this gap does NOT grow with the number of balls, and
// shrinks as total capacity grows.
//
// By default the classic engine reproduces the small-n table. With
// -large the same series runs at huge n through the sharded
// Monte-Carlo engine's checkpoint pipeline — the regime the unified
// observation subsystem exists for (n = 10^7 needs `-n 10000000`;
// the default keeps the demo to seconds):
//
//	go run ./examples/heavyload
//	go run ./examples/heavyload -large -n 1000000
//	go run ./examples/heavyload -large -n 10000000 -reps 3   # paper scale
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	balls "repro"
)

func main() {
	large := flag.Bool("large", false, "run the series at huge n through the sharded Monte-Carlo engine")
	n := flag.Int("n", 1_000_000, "bins for -large (half capacity 1, half capacity 10); 10000000 for the paper-scale run")
	reps := flag.Int("reps", 3, "repetitions for -large")
	factor := flag.Int64("factor", 10, "balls as a multiple of C for -large")
	flag.Parse()

	if *large {
		runLarge(*n, *reps, *factor)
		return
	}
	runClassic()
}

// runLarge demos the §4.4 heavy-load series on the sharded
// Monte-Carlo engine: checkpoints at every integer multiple of C up
// to the configured factor, observed through the per-shard
// block-aligned cut pipeline while the run is in flight.
func runLarge(n, reps int, factor int64) {
	if n < 2 || reps < 1 || factor < 1 {
		log.Fatalf("need -n >= 2, -reps >= 1 and -factor >= 1 (got n=%d reps=%d factor=%d)", n, reps, factor)
	}
	caps := balls.CapacitiesTwoClass(n/2, 1, n-n/2, 10)
	var total int64
	for _, c := range caps {
		total += c
	}
	checkpoints := make([]int64, factor)
	for i := range checkpoints {
		checkpoints[i] = int64(i+1) * total
	}
	fmt.Printf("sharded §4.4 series: n = %d bins, C = %d, m = %d·C, %d reps\n\n",
		n, total, factor, reps)

	start := time.Now()
	res, err := balls.MonteCarloLarge(balls.MonteLargeConfig{
		LargeConfig: balls.LargeConfig{
			Capacities:  caps,
			Balls:       factor * total,
			Seed:        5,
			Checkpoints: checkpoints,
			Heights:     int(factor) + 3,
		},
		Reps: reps,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Println("balls/C | mean balls (block-aligned cuts) | max − avg")
	for i, cp := range res.Checkpoints {
		fmt.Printf("%7d | %30.0f | %9.4f\n", i+1, cp.MeanBalls, cp.MeanDeviation)
	}
	fmt.Println("\nbins at load >= k (final state):")
	for _, h := range res.Heights {
		fmt.Printf("  k=%-3d %14.1f\n", h.Level, h.MeanBins)
	}
	fmt.Printf("\nwall time: %s (%d reps × %d balls)\n",
		elapsed.Round(time.Millisecond), reps, factor*total)
	fmt.Println("the deviation column is flat in m — Figure 16's invariance,")
	fmt.Println("now observable mid-run at n = 10^7 instead of only at the end.")
}

// runClassic is the original small-n table through the classic engine.
func runClassic() {
	const n = 2000
	fmt.Printf("n = %d bins, throwing up to 50*C balls, 30 reps\n", n)
	fmt.Println("balls/C | dev(C=1n) | dev(C=2n) | dev(C=5n)")

	// One row per multiple of C; one column per capacity scale.
	type series struct {
		c    int64
		devs []float64
	}
	var all []series
	checAt := []int64{1, 2, 5, 10, 20, 50}

	for _, c := range []int64{1, 2, 5} {
		caps, err := balls.CapacitiesRandomBinomial(n, float64(c), 42)
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		for _, v := range caps {
			total += v
		}
		checkpoints := make([]int64, len(checAt))
		for i, k := range checAt {
			checkpoints[i] = k * total
		}
		res, err := balls.Simulate(balls.SimConfig{
			Capacities:  caps,
			Balls:       50 * total,
			Reps:        30,
			Seed:        5,
			Checkpoints: checkpoints,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := series{c: c}
		for _, cp := range res.Checkpoints {
			s.devs = append(s.devs, cp.MeanDeviation)
		}
		all = append(all, s)
	}

	for i, k := range checAt {
		fmt.Printf("%7d | %9.3f | %9.3f | %9.3f\n",
			k, all[0].devs[i], all[1].devs[i], all[2].devs[i])
	}

	fmt.Println()
	fmt.Println("the columns are flat: the max-average gap is independent of m;")
	fmt.Println("richer systems (larger C) sit closer to zero — Figure 16's bundle")
	fmt.Println("of parallel lines.")
}
