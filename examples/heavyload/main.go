// Heavily loaded case (§4.4): throw far more balls than capacity and
// watch the gap between the maximum and the average load. The paper's
// Figure 16 finding — and the Berenbrink et al. theory for the uniform
// case — is that this gap does NOT grow with the number of balls, and
// shrinks as total capacity grows.
package main

import (
	"fmt"
	"log"

	balls "repro"
)

func main() {
	const n = 2000
	fmt.Printf("n = %d bins, throwing up to 50*C balls, 30 reps\n", n)
	fmt.Println("balls/C | dev(C=1n) | dev(C=2n) | dev(C=5n)")

	// One row per multiple of C; one column per capacity scale.
	type series struct {
		c    int64
		devs []float64
	}
	var all []series
	checAt := []int64{1, 2, 5, 10, 20, 50}

	for _, c := range []int64{1, 2, 5} {
		caps, err := balls.CapacitiesRandomBinomial(n, float64(c), 42)
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		for _, v := range caps {
			total += v
		}
		checkpoints := make([]int64, len(checAt))
		for i, k := range checAt {
			checkpoints[i] = k * total
		}
		res, err := balls.Simulate(balls.SimConfig{
			Capacities:  caps,
			Balls:       50 * total,
			Reps:        30,
			Seed:        5,
			Checkpoints: checkpoints,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := series{c: c}
		for _, cp := range res.Checkpoints {
			s.devs = append(s.devs, cp.MeanDeviation)
		}
		all = append(all, s)
	}

	for i, k := range checAt {
		fmt.Printf("%7d | %9.3f | %9.3f | %9.3f\n",
			k, all[0].devs[i], all[1].devs[i], all[2].devs[i])
	}

	fmt.Println()
	fmt.Println("the columns are flat: the max-average gap is independent of m;")
	fmt.Println("richer systems (larger C) sit closer to zero — Figure 16's bundle")
	fmt.Println("of parallel lines.")
}
