// Command streaming demonstrates the streaming engine: balls arrive in
// rounds, a deterministic deletion stream expires them, and an
// inter-round rebalance pass bounds cross-shard drift — a churning
// system observed along its trajectory rather than a one-shot
// placement. The run shows three contracts at once:
//
//   - the trajectory (round-indexed checkpoints) and final state are
//     bit-identical for any -workers value;
//
//   - a run cancelled after k rounds is bit-identical to a run
//     configured with k rounds — the completed-round prefix is the
//     model state, never a torn intermediate;
//
//   - steady-state occupancy converges to arrivals − deletions per
//     round, with the rebalance pass keeping every shard within
//     (1+tol)× its target.
//
// Usage:
//
//	go run ./examples/streaming [-n 100000] [-rounds 12]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"

	balls "repro"
)

func main() {
	n := flag.Int("n", 100_000, "number of bins (half capacity 1, half capacity 10)")
	rounds := flag.Int("rounds", 12, "rounds to run")
	flag.Parse()

	caps := balls.CapacitiesTwoClass(*n/2, 1, *n-*n/2, 10)
	cfg := balls.StreamConfig{
		Capacities:   caps,
		Rounds:       *rounds,
		Arrivals:     int64(*n),
		Deletions:    int64(*n) / 2,
		RebalanceTol: 0.1,
		Seed:         7,
		Shards:       32,
		Checkpoints:  roundCuts(*rounds),
	}
	fmt.Printf("streaming: n = %d bins, %d rounds × (%d arrivals, %d deletions), tol 0.1\n\n",
		*n, *rounds, cfg.Arrivals, cfg.Deletions)

	res, err := balls.SimulateStream(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round   occupancy   max load   max − avg")
	for _, cp := range res.Checkpoints {
		fmt.Printf("%5d %11.0f %10.4f %11.4f\n", cp.Balls, cp.MeanBalls, cp.MeanMaxLoad, cp.MeanDeviation)
	}
	fmt.Printf("\nfinal: %d balls (%d arrived − %d deleted), %d rebalanced, max load %.4f\n",
		res.Balls, res.Arrived, res.Deleted, res.Moved, res.MaxLoad)

	// Workers never change a bit of the trajectory or the final state.
	cfg2 := cfg
	cfg2.Workers = 4
	res4, err := balls.SimulateStream(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(res.ShardBalls, res4.ShardBalls) || res.MaxLoad != res4.MaxLoad {
		fmt.Fprintln(os.Stderr, "DETERMINISM VIOLATION: result differs at workers=4")
		os.Exit(1)
	}
	fmt.Printf("trajectory and final state bit-identical across worker counts ✓\n")

	// A cancelled run IS a shorter run: stop after rounds/2 completed
	// rounds and compare against a run configured with exactly that
	// many rounds.
	k := *rounds / 2
	part := cfg
	part.CancelAfterRounds = k
	pres, err := balls.SimulateStream(part)
	var cancelled *balls.CancelledError
	if !errors.As(err, &cancelled) {
		log.Fatalf("expected a CancelledError, got %v", err)
	}
	short := cfg
	short.Rounds = k
	short.Checkpoints = roundCuts(k)
	sres, err := balls.SimulateStream(short)
	if err != nil {
		log.Fatal(err)
	}
	if pres.Balls != sres.Balls || !reflect.DeepEqual(pres.ShardBalls, sres.ShardBalls) {
		fmt.Fprintln(os.Stderr, "PREFIX VIOLATION: cancelled prefix differs from a shorter run")
		os.Exit(1)
	}
	fmt.Printf("run cancelled after %d rounds ≡ a %d-round run, bit for bit ✓\n", k, k)
}

// roundCuts observes every round: 1..rounds.
func roundCuts(rounds int) []int64 {
	cuts := make([]int64, rounds)
	for i := range cuts {
		cuts[i] = int64(i + 1)
	}
	return cuts
}
