// Exact check: for games small enough to enumerate every random outcome,
// the library's Monte-Carlo simulator must converge to the exact
// distribution. This example enumerates a 3-bin heterogeneous game
// (capacities 1, 2, 3 — every sequence of choices with its probability)
// and compares it with 200,000 simulated repetitions.
package main

import (
	"fmt"
	"log"
	"sort"

	balls "repro"
	"repro/internal/exact"
)

func main() {
	caps := []int64{1, 2, 3}
	const m = 6 // = C, the paper's workload

	ex, err := exact.Run(exact.Game{Capacities: caps, D: 2, Balls: m})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("game: capacities (1,2,3), d = 2, m = C = 6, Algorithm 1")
	fmt.Printf("exact expected max load:  %.6f\n", ex.MeanMaxLoad)
	fmt.Printf("exact expected balls/bin: %.4f %.4f %.4f\n",
		ex.BinMeanBalls[0], ex.BinMeanBalls[1], ex.BinMeanBalls[2])

	// Monte-Carlo through the public API.
	const reps = 200000
	var meanMax float64
	binMeans := make([]float64, 3)
	for rep := 0; rep < reps; rep++ {
		sys, err := balls.NewSystem(caps, balls.WithSeed(uint64(rep)+1))
		if err != nil {
			log.Fatal(err)
		}
		sys.PlaceN(m)
		meanMax += sys.MaxLoad() / reps
		for i := 0; i < 3; i++ {
			binMeans[i] += float64(sys.BallCount(i)) / reps
		}
	}
	fmt.Printf("simulated mean max load:  %.6f  (Δ %.6f)\n", meanMax, meanMax-ex.MeanMaxLoad)
	fmt.Printf("simulated balls/bin:      %.4f %.4f %.4f\n",
		binMeans[0], binMeans[1], binMeans[2])

	// The exact max-load distribution, largest probabilities first.
	type kv struct {
		load float64
		p    float64
	}
	var dist []kv
	for l, p := range ex.MaxLoadDist {
		dist = append(dist, kv{l, p})
	}
	sort.Slice(dist, func(i, j int) bool { return dist[i].p > dist[j].p })
	fmt.Println("\nexact max-load distribution:")
	for _, e := range dist {
		fmt.Printf("  P[max = %-8.4f] = %.6f\n", e.load, e.p)
	}
	fmt.Println("\nthe simulator is statistically indistinguishable from the exact")
	fmt.Println("model — the same check runs automatically in the test suite.")
}
