// Serving under failures: the paper's static guarantee ("max load
// stays within lnln(n)/ln(2) of optimal") stress-tested as a serving
// system operators would recognise. A heterogeneous cluster takes a
// steady request stream while servers crash and recover; requests that
// wait too long time out and retry with exponential backoff, and
// admission control sheds load when queues blow past a threshold. The
// run prints the degraded-mode accounting — availability, goodput,
// retries, sheds, response times — at increasing utilisation and churn.
package main

import (
	"fmt"
	"log"

	balls "repro"
)

func main() {
	capacities := []int64{1, 1, 1, 1, 1, 1, 1, 1, 10, 10} // 8 slow + 2 fast, C = 28

	fmt.Println("10 servers (8x capacity 1, 2x capacity 10), 2000 ticks")
	fmt.Println("util | churn                | avail | goodput | shed | p99 resp | backlog")

	churns := []struct {
		name string
		plan balls.ChurnPlan
	}{
		{"none", balls.ChurnPlan{}},
		{"fast server outage", balls.ChurnPlan{
			// One of the two fast servers — over a third of the total
			// capacity — is gone for a quarter of the run.
			Schedule: []balls.ChurnEvent{
				{Tick: 500, Peer: 8, Down: true},
				{Tick: 1000, Peer: 8, Down: false},
			},
		}},
		{"random crash/recover", balls.ChurnPlan{
			CrashProb:   0.002,
			RecoverProb: 0.05,
		}},
	}

	for _, arrivals := range []int64{14, 21, 25} { // 50%, 75%, ~90% utilisation
		for _, ch := range churns {
			res, err := balls.SimulateCluster(balls.ClusterConfig{
				Capacities:    capacities,
				Ticks:         2000,
				Arrivals:      arrivals,
				Churn:         ch.plan,
				Retry:         balls.RetryPolicy{TimeoutTicks: 20, MaxRetries: 3, BackoffBase: 2},
				ShedThreshold: 8,
				Seed:          7,
			})
			if err != nil {
				log.Fatal(err)
			}
			goodput := float64(res.Completed) / float64(res.Arrived)
			fmt.Printf("%3.0f%% | %-20s | %.3f |  %.3f  | %4d | %5d    | %d\n",
				100*float64(arrivals)/28, ch.name, res.Availability, goodput,
				res.Shed, res.P99Latency, res.Queued)
		}
		fmt.Println()
	}

	fmt.Println("the d-choice dispatch keeps queues short enough that even a 36%")
	fmt.Println("capacity outage degrades goodput gracefully: timeouts retry onto")
	fmt.Println("surviving servers and shedding only engages near saturation.")
}
