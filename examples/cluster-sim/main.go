// Cluster simulation: the paper's static guarantee ("max load stays
// within lnln(n)/ln(2) of optimal") turned into the dynamic quantity
// operators watch — queue lengths and response times. A cluster of slow
// and fast servers receives a steady request stream; we compare dispatch
// policies at increasing utilisation.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/protocol"
)

func main() {
	capacities := []int64{1, 1, 1, 1, 1, 1, 1, 1, 10, 10} // 8 slow + 2 fast, C = 28

	fmt.Println("10 servers (8x speed 1, 2x speed 10), 2000 ticks, warmup 200")
	fmt.Println("util | policy          | mean resp | p-like max queue load | backlog")

	policies := []struct {
		name string
		f    protocol.Factory
	}{
		{"greedy d=2", protocol.GreedyFactory(2)},
		{"oblivious d=2", protocol.StandardFactory(2)},
		{"single", protocol.SingleFactory()},
	}

	for _, arrivals := range []int{14, 21, 25} { // 50%, 75%, ~90% utilization
		for _, pol := range policies {
			res, err := cluster.Run(cluster.Config{
				Capacities:      capacities,
				ArrivalsPerTick: arrivals,
				Ticks:           2000,
				WarmupTicks:     200,
				Placer:          pol.f,
				Seed:            7,
			})
			if err != nil {
				log.Fatal(err)
			}
			util := cluster.Utilization(cluster.Config{
				Capacities:      capacities,
				ArrivalsPerTick: arrivals,
			})
			fmt.Printf("%3.0f%% | %-15s | %9.2f | %21.2f | %7d\n",
				100*util, pol.name, res.ResponseTime.Mean(), res.MaxQueueLoad, res.FinalQueued)
		}
		fmt.Println()
	}

	fmt.Println("capacity-aware two-choice dispatch keeps worst-case queues and")
	fmt.Println("response tails low even near saturation; capacity-oblivious")
	fmt.Println("dispatch overloads the slow servers exactly as the paper predicts.")
}
