package balls

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestSimulateStream(t *testing.T) {
	cfg := StreamConfig{
		Capacities:   CapacitiesTwoClass(500, 1, 500, 10),
		Rounds:       4,
		Arrivals:     1000,
		Deletions:    300,
		RebalanceTol: 0.25,
		Seed:         9,
		Shards:       8,
		Checkpoints:  []int64{2, 4},
	}
	res, err := SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1000 || res.Shards != 8 || res.Rounds != 4 {
		t.Fatalf("N = %d shards = %d rounds = %d", res.N, res.Shards, res.Rounds)
	}
	if res.Arrived != 4000 || res.Deleted != 1200 || res.Balls != 2800 {
		t.Fatalf("arrived = %d deleted = %d balls = %d", res.Arrived, res.Deleted, res.Balls)
	}
	var sum int64
	for i := 0; i < res.Loads.N(); i++ {
		sum += res.Loads.Balls(i)
	}
	if sum != res.Balls {
		t.Fatalf("final state holds %d balls, want %d", sum, res.Balls)
	}
	var shardSum int64
	for _, b := range res.ShardBalls {
		shardSum += b
	}
	if shardSum != res.Balls {
		t.Fatalf("shard occupancies sum to %d, want %d", shardSum, res.Balls)
	}
	if len(res.Checkpoints) != 2 {
		t.Fatalf("checkpoints = %d, want 2", len(res.Checkpoints))
	}
	// Round-indexed cuts are realised exactly: occupancy at the end of
	// round r is r·(Arrivals − Deletions).
	for i, want := range []struct{ round, balls int64 }{{2, 1400}, {4, 2800}} {
		cp := res.Checkpoints[i]
		if cp.Balls != want.round || cp.MeanBalls != float64(want.balls) || cp.Reps != 1 {
			t.Fatalf("cut %d = %+v, want round %d occupancy %d", i, cp, want.round, want.balls)
		}
	}

	// Workers never changes the outcome.
	cfg.Workers = 4
	res4, err := SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.ShardBalls, res4.ShardBalls) ||
		!reflect.DeepEqual(res.Checkpoints, res4.Checkpoints) ||
		res.MaxLoad != res4.MaxLoad || res.Moved != res4.Moved {
		t.Fatal("result differs across worker counts")
	}
	for i := 0; i < res.Loads.N(); i++ {
		if res.Loads.Balls(i) != res4.Loads.Balls(i) {
			t.Fatalf("bin %d differs across worker counts", i)
		}
	}
}

// A quiet round — no deletions, no rebalance — is exactly one sharded
// single run.
func TestSimulateStreamQuietRoundMatchesLarge(t *testing.T) {
	caps := CapacitiesTwoClass(400, 1, 400, 10)
	sres, err := SimulateStream(StreamConfig{
		Capacities: caps,
		Rounds:     1,
		Arrivals:   2000,
		Seed:       9,
		Shards:     8,
		Heights:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := SimulateLarge(LargeConfig{
		Capacities: caps,
		Balls:      2000,
		Seed:       9,
		Shards:     8,
		Heights:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sres.ShardBalls, lres.ShardBalls) {
		t.Fatalf("shard balls %v != %v", sres.ShardBalls, lres.ShardBalls)
	}
	if sres.MaxLoad != lres.MaxLoad || sres.Deviation != lres.Deviation {
		t.Fatalf("stats (%v, %v) != (%v, %v)", sres.MaxLoad, sres.Deviation, lres.MaxLoad, lres.Deviation)
	}
	if len(sres.Heights) != len(lres.Heights) {
		t.Fatalf("heights %v != %v", sres.Heights, lres.Heights)
	}
	for i := range sres.Heights {
		// CI95 is NaN for a single run on both sides, so compare the
		// meaningful fields.
		if sres.Heights[i].Level != lres.Heights[i].Level ||
			sres.Heights[i].MeanBins != lres.Heights[i].MeanBins {
			t.Fatalf("heights %v != %v", sres.Heights, lres.Heights)
		}
	}
	for i := 0; i < sres.Loads.N(); i++ {
		if sres.Loads.Balls(i) != lres.Loads.Balls(i) {
			t.Fatalf("bin %d differs from SimulateLarge", i)
		}
	}
}

func TestSimulateStreamSchedule(t *testing.T) {
	res, err := SimulateStream(StreamConfig{
		Capacities: CapacitiesTwoClass(200, 1, 200, 10),
		Schedule:   []int64{1500, 0, 500},
		Deletions:  400,
		Seed:       5,
		Shards:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (implied by schedule)", res.Rounds)
	}
	if res.Arrived != 2000 || res.Deleted != 1200 || res.Balls != 800 {
		t.Fatalf("arrived = %d deleted = %d balls = %d", res.Arrived, res.Deleted, res.Balls)
	}
}

// A cancelled run returns the deterministic completed-round prefix.
func TestSimulateStreamCancelPrefix(t *testing.T) {
	cfg := StreamConfig{
		Capacities:        CapacitiesTwoClass(300, 1, 300, 10),
		Rounds:            5,
		Arrivals:          800,
		Deletions:         200,
		Seed:              11,
		Shards:            4,
		Checkpoints:       []int64{2, 5},
		CancelAfterRounds: 3,
	}
	part, err := SimulateStream(cfg)
	var cancelled *CancelledError
	if !errors.As(err, &cancelled) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if cancelled.CompletedRounds != 3 || cancelled.CompletedCuts != 1 {
		t.Fatalf("completed rounds = %d cuts = %d", cancelled.CompletedRounds, cancelled.CompletedCuts)
	}
	if part == nil || part.Rounds != 3 {
		t.Fatalf("partial rounds = %v", part)
	}

	short := cfg
	short.Rounds, short.CancelAfterRounds = 3, 0
	short.Checkpoints = []int64{2}
	full, err := SimulateStream(short)
	if err != nil {
		t.Fatal(err)
	}
	if part.Arrived != full.Arrived || part.Deleted != full.Deleted || part.Balls != full.Balls {
		t.Fatalf("partial counters (%d, %d, %d) != short run (%d, %d, %d)",
			part.Arrived, part.Deleted, part.Balls, full.Arrived, full.Deleted, full.Balls)
	}
	if !reflect.DeepEqual(part.ShardBalls, full.ShardBalls) {
		t.Fatalf("partial shard balls %v != %v", part.ShardBalls, full.ShardBalls)
	}
	if !reflect.DeepEqual(part.Checkpoints[:1], full.Checkpoints) {
		t.Fatalf("partial cuts %v != %v", part.Checkpoints[:1], full.Checkpoints)
	}
	// No final state on a cancelled partial.
	if part.MaxLoad != 0 || part.Heights != nil {
		t.Fatalf("partial carries final-state fields: max %v heights %v", part.MaxLoad, part.Heights)
	}

	// A pre-cancelled context yields an empty prefix.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	live := cfg
	live.CancelAfterRounds = 0
	live.Context = ctx
	part0, err := SimulateStream(live)
	if !errors.As(err, &cancelled) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if part0.Rounds != 0 || part0.Arrived != 0 {
		t.Fatalf("pre-cancelled prefix rounds = %d arrived = %d", part0.Rounds, part0.Arrived)
	}
}

func TestSimulateStreamValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  StreamConfig
		want string
	}{
		{"capacities", StreamConfig{Rounds: 1}, "capacities"},
		{"rounds", StreamConfig{Capacities: []int64{1, 1}}, "Rounds"},
		{"deletions", StreamConfig{Capacities: []int64{1, 1}, Rounds: 1, Deletions: -1}, "Deletions"},
		{"schedule-clash", StreamConfig{Capacities: []int64{1, 1}, Schedule: []int64{5}, Arrivals: 5}, "Schedule"},
		{"tol", StreamConfig{Capacities: []int64{1, 1}, Rounds: 1, RebalanceTol: -0.5}, "RebalanceTol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := SimulateStream(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
