// Public surface of the fault-tolerant execution layer: cancellation
// errors, panic provenance, and resume state.
//
// Every engine accepts a context.Context (SimConfig.Context,
// LargeConfig.Context — inherited by MonteLargeConfig —
// StreamConfig.Context and ClusterConfig.Context). When the context
// fires mid-run the engine stops at the next task boundary and
// returns BOTH a partial result and a *CancelledError describing which
// deterministic prefix the partial covers. Partial results are part of
// the model, like Shards and routing blocks: the prefix content is
// bit-identical to the corresponding prefix of an uninterrupted run —
// only WHICH prefix you get depends on timing. Use CancelAfterReps
// (CancelAfterRounds for streaming, CancelAfterTicks for serving) for
// a fully deterministic stop.
//
// A panic inside any engine worker never crashes or hangs the process:
// it surfaces as a *PanicError carrying provenance (engine, task kind,
// repetition, shard index) from the engine call.
package balls

import "repro/internal/sim"

// ErrCancelled is the sentinel every cancellation error matches:
// errors.Is(err, ErrCancelled) is true exactly when a run stopped
// early because its context fired (or CancelAfterReps triggered)
// rather than because of a failure.
var ErrCancelled = sim.ErrCancelled

// CancelledError reports a cooperatively cancelled run; the engine
// that returns it also returns a non-nil partial result. See the
// field docs for which prefix the partial covers.
type CancelledError = sim.CancelledError

// PanicError is a contained panic from inside an engine: provenance
// (engine, task, repetition, index) plus the recovered value and
// stack.
type PanicError = sim.PanicError

// ResumeState is the serializable checkpoint of a cancelled
// MonteCarloLarge run (CancelledError.Checkpoint). Feeding it back
// through MonteLargeConfig.Resume — with an otherwise identical
// config — continues the run and produces final aggregates
// byte-identical to an uninterrupted one. It marshals as JSON;
// WriteFile persists it atomically.
type ResumeState = sim.MonteCheckpoint

// ReadResumeState loads a ResumeState previously persisted with
// (*ResumeState).WriteFile.
func ReadResumeState(path string) (*ResumeState, error) {
	return sim.ReadMonteCheckpoint(path)
}
